#include "cli/cli.h"

#include "common/parse.h"

// Command-line front end for the library.
//
//   lipformer_cli list
//   lipformer_cli train --model=lipformer --dataset=etth1 [options]
//   lipformer_cli forecast --dataset=weather --out=pred.csv [options]
//   lipformer_cli serve --load=FILE [options]
//
// Common options:
//   --csv=FILE        use a CSV time series instead of a registry dataset
//   --dataset=NAME    registry dataset (see `list`)
//   --scale=X         registry series length fraction (default 0.2)
//   --model=NAME      forecaster (see `list`; default lipformer)
//   --input=N         look-back length (default 96)
//   --horizon=N       forecast length (default 24)
//   --epochs=N        training epochs (default 5)
//   --batch=N         batch size (default 32)
//   --hidden=N        hidden feature size (default 64)
//   --lr=X            learning rate (default 1e-3; EXPERIMENTS.md lists
//                     the per-model tuned values)
//   --loss=NAME       training loss: smoothl1 (default) | mse | mae
//   --patience=N      early-stopping patience (default max(2, epochs/2))
//   --covariates      enable the weak-data-enriching pipeline (lipformer)
//   --save=FILE       (train) write the trained model as a serving
//                     bundle: checkpoint v2 with config + scaler, loadable
//                     by `serve --load` with no retraining. With
//                     --covariates the file instead holds raw best
//                     parameters (bundles don't carry the dual encoder).
//                     Refuses to overwrite an existing file unless --force
//                     (or --resume, where the killed run may have written
//                     it already).
//   --force           overwrite existing --save output
//   --snapshot=FILE   (train) crash-safety snapshot: full training state
//                     written atomically every --snapshot-every epochs and
//                     on SIGINT/SIGTERM after the in-flight step
//   --snapshot-every=N  snapshot cadence in epochs (default 1)
//   --resume=FILE     (train) continue a killed run from its snapshot;
//                     with the same flags the final model is bitwise
//                     identical to an uninterrupted run
//   --lr-schedule=S   none (default) | cosine | step
//   --out=FILE        (forecast) output CSV path
//   --seed=N          RNG seed
//   --threads=N       tensor-kernel threads (default: LIPF_NUM_THREADS or
//                     hardware concurrency; 1 = serial; results are
//                     bitwise identical for every N)
//
// Serve options (see CmdServe for the request protocol):
//   --load=FILE       serving bundle written by `train --save`; repeatable
//   --load=name=FILE  as name=FILE to serve several models from one
//                     process (a bare FILE is served as "default"); route
//                     requests with a "<name>|" line prefix
//   --requests=FILE   request lines (default: stdin)
//   --max-batch=N     micro-batcher coalescing cap (default 16)
//   --max-delay-ms=N  micro-batcher max wait for stragglers (default 2)
//   --queue-capacity=N  per-model bounded request queue (default 256);
//                     the CLI producer blocks for a slot (flow control)
//                     instead of surfacing backpressure as errors
//   --reload-poll-ms=N  hot-reload watcher cadence (default 200, 0 = off):
//                     publishing a new bundle over a loaded path with an
//                     atomic rename swaps it in with zero downtime; a
//                     bundle failing validation keeps the old model
//                     serving and logs the error
//   --no-plan         disable the AOT inference-plan path and serve from
//                     the module forward (serve/plan.h); results are
//                     bitwise identical either way. LIPF_NO_PLAN=1 in the
//                     environment does the same.
//   --deadline-ms=N   per-request deadline (default 0 = none): a request
//                     that cannot be answered in time completes with
//                     "error: DeadlineExceeded" instead of occupying the
//                     queue; admission control sheds with
//                     "error: Overloaded ... retry after Nms" when the
//                     estimated queue drain already exceeds the deadline
//   --max-queue-delay-ms=N  admission cap on the estimated queue drain
//                     (default 0 = off); requests behind a deeper backlog
//                     are shed with "error: Overloaded" + retry-after
//   --breaker-failures=N  consecutive request failures that trip the
//                     per-model circuit breaker (default 8; 0 disables);
//                     while open, requests answer "error: Unavailable:
//                     circuit breaker open ... retry after Nms"
//   --breaker-cooldown-ms=N  how long a tripped breaker stays open before
//                     half-open probe requests test recovery (default 250)
//
// At runtime `serve` answers "!stats" request lines and SIGHUP with a
// registry status dump (per-model reload + batcher counters) on stderr,
// and "!health" request lines with one "health model=... breaker=..."
// line per model on stdout (in answer order, so scripted clients can
// poll health mid-stream). SIGPIPE is ignored: a client disconnecting
// mid-stream drains in-flight requests and exits cleanly instead of
// killing the server.
//
// Unknown --options, stray non-option arguments and malformed numbers are
// usage errors (they used to be silently ignored / parsed as 0).

#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <future>
#include <iostream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util/profiler.h"
#include "common/atomic_file.h"
#include "common/interrupt.h"
#include "common/thread_pool.h"
#include "core/lipformer.h"
#include "data/csv.h"
#include "data/registry.h"
#include "models/factory.h"
#include "serve/batcher.h"
#include "serve/registry.h"
#include "serve/session.h"
#include "train/extended_metrics.h"
#include "train/trainer.h"

namespace lipformer {
namespace cli {
namespace {

enum class OptionKind { kFlag, kInt, kDouble, kString };

struct OptionSpec {
  const char* key;
  OptionKind kind;
};

// Every option any command understands; ValidateArgs rejects the rest.
constexpr OptionSpec kOptionSpecs[] = {
    {"csv", OptionKind::kString},      {"dataset", OptionKind::kString},
    {"scale", OptionKind::kDouble},    {"model", OptionKind::kString},
    {"input", OptionKind::kInt},       {"horizon", OptionKind::kInt},
    {"epochs", OptionKind::kInt},      {"batch", OptionKind::kInt},
    {"hidden", OptionKind::kInt},      {"lr", OptionKind::kDouble},
    {"loss", OptionKind::kString},     {"patience", OptionKind::kInt},
    {"covariates", OptionKind::kFlag}, {"save", OptionKind::kString},
    {"out", OptionKind::kString},      {"seed", OptionKind::kInt},
    {"threads", OptionKind::kInt},     {"load", OptionKind::kString},
    {"requests", OptionKind::kString}, {"max-batch", OptionKind::kInt},
    {"max-delay-ms", OptionKind::kInt},
    {"queue-capacity", OptionKind::kInt},
    {"reload-poll-ms", OptionKind::kInt},
    {"deadline-ms", OptionKind::kInt},
    {"max-queue-delay-ms", OptionKind::kInt},
    {"breaker-failures", OptionKind::kInt},
    {"breaker-cooldown-ms", OptionKind::kInt},
    {"snapshot", OptionKind::kString}, {"snapshot-every", OptionKind::kInt},
    {"resume", OptionKind::kString},   {"force", OptionKind::kFlag},
    {"lr-schedule", OptionKind::kString},
    {"no-plan", OptionKind::kFlag},
};

const OptionSpec* FindOptionSpec(const std::string& key) {
  for (const OptionSpec& spec : kOptionSpecs) {
    if (key == spec.key) return &spec;
  }
  return nullptr;
}

}  // namespace

// Thin wrappers over the shared strict parsers (common/parse.h), kept so
// existing cli:: call sites and tests are untouched.
bool ParseInt64(const std::string& s, int64_t* out) {
  return lipformer::ParseInt64(s, out);
}

bool ParseDouble(const std::string& s, double* out) {
  return lipformer::ParseDouble(s, out);
}

std::string CliArgs::Get(const std::string& key,
                         const std::string& def) const {
  auto it = options.find(key);
  return it == options.end() ? def : it->second;
}

int64_t CliArgs::GetInt(const std::string& key, int64_t def) const {
  auto it = options.find(key);
  if (it == options.end()) return def;
  int64_t value = def;
  return ParseInt64(it->second, &value) ? value : def;
}

double CliArgs::GetDouble(const std::string& key, double def) const {
  auto it = options.find(key);
  if (it == options.end()) return def;
  double value = def;
  return ParseDouble(it->second, &value) ? value : def;
}

CliArgs Parse(int argc, char** argv) {
  CliArgs args;
  if (argc > 1) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      args.stragglers.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    std::string key = eq == std::string::npos ? arg : arg.substr(0, eq);
    std::string value = eq == std::string::npos ? "1" : arg.substr(eq + 1);
    args.options[key] = value;
    args.ordered.emplace_back(std::move(key), std::move(value));
  }
  return args;
}

std::vector<std::string> CliArgs::GetAll(const std::string& key) const {
  std::vector<std::string> values;
  for (const auto& [k, v] : ordered) {
    if (k == key) values.push_back(v);
  }
  // CliArgs built by hand (tests) may fill only the map.
  if (values.empty()) {
    auto it = options.find(key);
    if (it != options.end()) values.push_back(it->second);
  }
  return values;
}

Status ValidateArgs(const CliArgs& args) {
  if (!args.stragglers.empty()) {
    return Status::InvalidArgument("unexpected argument '" +
                                   args.stragglers.front() +
                                   "' (options are --key or --key=value)");
  }
  // Check every occurrence: `--epochs=zz --epochs=3` leaves only "3" in
  // the last-wins map, but the malformed first occurrence is still a
  // usage error. Hand-built CliArgs (tests) may fill only the map, so
  // validate the union of both.
  std::vector<std::pair<std::string, std::string>> occurrences(
      args.ordered.begin(), args.ordered.end());
  occurrences.insert(occurrences.end(), args.options.begin(),
                     args.options.end());
  for (const auto& [key, value] : occurrences) {
    const OptionSpec* spec = FindOptionSpec(key);
    if (spec == nullptr) {
      return Status::InvalidArgument("unknown option --" + key);
    }
    if (spec->kind == OptionKind::kInt) {
      int64_t parsed;
      if (!ParseInt64(value, &parsed)) {
        return Status::InvalidArgument("option --" + key +
                                       " expects an integer, got '" +
                                       value + "'");
      }
    } else if (spec->kind == OptionKind::kDouble) {
      double parsed;
      if (!ParseDouble(value, &parsed)) {
        return Status::InvalidArgument("option --" + key +
                                       " expects a number, got '" + value +
                                       "'");
      }
    }
  }
  return Status::OK();
}

int CmdList() {
  std::printf("datasets:\n");
  for (const std::string& name : RegisteredDatasetNames()) {
    DatasetSpec spec = MakeDataset(name, 0.05);
    std::printf("  %-14s %s\n", name.c_str(), spec.description.c_str());
  }
  std::printf("models:\n");
  for (const std::string& name : RegisteredModelNames()) {
    std::printf("  %s\n", name.c_str());
  }
  return 0;
}

// Loads the series selected by --csv / --dataset and fills split ratios.
bool LoadSeries(const CliArgs& args, TimeSeries* series, double* train_ratio,
                double* val_ratio, double* test_ratio) {
  *train_ratio = 0.7;
  *val_ratio = 0.1;
  *test_ratio = 0.2;
  if (args.Has("csv")) {
    Result<TimeSeries> loaded = ReadCsvTimeSeries(args.Get("csv", ""));
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   loaded.status().ToString().c_str());
      return false;
    }
    *series = loaded.MoveValue();
    return true;
  }
  const std::string name = args.Get("dataset", "etth1");
  if (!IsRegisteredDataset(name)) {
    std::fprintf(stderr, "error: unknown dataset '%s' (try `list`)\n",
                 name.c_str());
    return false;
  }
  DatasetSpec spec = MakeDataset(name, args.GetDouble("scale", 0.2));
  *series = spec.series;
  *train_ratio = spec.train_ratio;
  *val_ratio = spec.val_ratio;
  *test_ratio = spec.test_ratio;
  return true;
}

namespace {

struct TrainedModel {
  std::unique_ptr<Forecaster> model;
  std::unique_ptr<LiPFormer> lip;  // set when model_name == lipformer
  std::unique_ptr<DualEncoder> dual;
  TrainResult result;
  // What the model was built with, so CmdTrain can write a serving bundle
  // the factory can reconstruct (serve/session.h).
  std::string model_name;
  ModelOptions options;
};

// Maps a --loss value to LossKind; false on unknown names.
bool ParseLossKind(const std::string& name, LossKind* out) {
  if (name == "smoothl1") {
    *out = LossKind::kSmoothL1;
  } else if (name == "mse") {
    *out = LossKind::kMse;
  } else if (name == "mae") {
    *out = LossKind::kMae;
  } else {
    return false;
  }
  return true;
}

bool TrainFromArgs(const CliArgs& args, WindowDataset& data,
                   TrainedModel* out) {
  const std::string model_name = args.Get("model", "lipformer");
  const int64_t input_len = args.GetInt("input", 96);
  const int64_t horizon = args.GetInt("horizon", 24);

  TrainConfig train;
  train.epochs = args.GetInt("epochs", 5);
  train.patience =
      args.GetInt("patience", std::max<int64_t>(2, train.epochs / 2));
  train.batch_size = args.GetInt("batch", 32);
  train.seed = static_cast<uint64_t>(args.GetInt("seed", 1));
  train.lr = static_cast<float>(args.GetDouble("lr", train.lr));
  if (!ParseLossKind(args.Get("loss", "smoothl1"), &train.loss)) {
    std::fprintf(stderr,
                 "error: unknown loss '%s' (want smoothl1, mse or mae)\n",
                 args.Get("loss", "").c_str());
    return false;
  }
  train.verbose = true;
  if (args.Has("save")) train.checkpoint_path = args.Get("save", "");

  // Crash safety: snapshots + exact resume + graceful SIGINT/SIGTERM.
  train.snapshot_path = args.Get("snapshot", "");
  train.snapshot_every = args.GetInt("snapshot-every", 1);
  train.resume_path = args.Get("resume", "");
  train.handle_signals = true;
  if (train.snapshot_every < 1) {
    std::fprintf(stderr, "error: --snapshot-every must be >= 1\n");
    return false;
  }
  const std::string schedule = args.Get("lr-schedule", "none");
  if (schedule == "none") {
    train.lr_schedule = LrScheduleKind::kNone;
  } else if (schedule == "cosine") {
    train.lr_schedule = LrScheduleKind::kCosine;
  } else if (schedule == "step") {
    train.lr_schedule = LrScheduleKind::kStep;
  } else {
    std::fprintf(stderr,
                 "error: unknown --lr-schedule '%s' (want none, cosine or "
                 "step)\n",
                 schedule.c_str());
    return false;
  }
  if (args.Has("covariates") &&
      (args.Has("snapshot") || args.Has("resume"))) {
    // The covariate pipeline runs an extra pretraining phase the snapshot
    // format does not cover; a "resumed" run would silently diverge.
    std::fprintf(stderr, "error: --snapshot/--resume do not support "
                         "--covariates yet\n");
    return false;
  }

  out->model_name = model_name;
  if (model_name == "lipformer") {
    LiPFormerConfig config;
    config.input_len = input_len;
    config.pred_len = horizon;
    config.channels = data.channels();
    config.hidden_dim = args.GetInt("hidden", 64);
    config.seed = train.seed;
    // Largest divisor of T not exceeding 48.
    for (int64_t pl = std::min<int64_t>(48, input_len); pl >= 1; --pl) {
      if (input_len % pl == 0) {
        config.patch_len = pl;
        break;
      }
    }
    out->options.patch_len = config.patch_len;
    out->options.hidden_dim = config.hidden_dim;
    out->options.num_heads = config.num_heads;
    out->options.dropout = config.dropout;
    out->options.seed = config.seed;
    out->lip = std::make_unique<LiPFormer>(config);
    if (args.Has("covariates")) {
      Rng rng(train.seed + 1);
      out->dual = std::make_unique<DualEncoder>(
          MakeCovariateConfig(data, horizon), data.channels(), rng);
      PretrainConfig pretrain;
      pretrain.epochs = std::max<int64_t>(2, train.epochs / 2);
      pretrain.verbose = true;
      LiPFormerPipelineResult piped = TrainLiPFormerPipeline(
          out->lip.get(), out->dual.get(), data, pretrain, train);
      out->result = piped.train;
    } else {
      out->result = TrainAndEvaluate(out->lip.get(), data, train);
    }
    return true;
  }

  bool known = false;
  for (const std::string& name : RegisteredModelNames()) {
    if (name == model_name) known = true;
  }
  if (!known) {
    std::fprintf(stderr, "error: unknown model '%s' (try `list`)\n",
                 model_name.c_str());
    return false;
  }
  ForecasterDims dims{input_len, horizon, data.channels()};
  ModelOptions options;
  options.hidden_dim = args.GetInt("hidden", 64);
  options.seed = train.seed;
  options.num_covariates = data.num_numeric_covariates();
  out->options = options;
  out->model = CreateModel(model_name, dims, options);
  out->result = TrainAndEvaluate(out->model.get(), data, train);
  return true;
}

Forecaster* ActiveModel(TrainedModel& trained) {
  return trained.lip ? static_cast<Forecaster*>(trained.lip.get())
                     : trained.model.get();
}

}  // namespace

int CmdTrain(const CliArgs& args) {
  TimeSeries series;
  double tr, va, te;
  if (!LoadSeries(args, &series, &tr, &va, &te)) return 1;

  WindowDataset::Options options;
  options.input_len = args.GetInt("input", 96);
  options.pred_len = args.GetInt("horizon", 24);
  options.train_ratio = tr;
  options.val_ratio = va;
  options.test_ratio = te;
  WindowDataset data(series, options);

  // Refuse to clobber an existing trained model. --resume is exempt: the
  // killed run may legitimately have written --save already.
  if (args.Has("save") && !args.Has("force") && !args.Has("resume") &&
      PathExists(args.Get("save", ""))) {
    std::fprintf(stderr,
                 "error: --save target '%s' already exists; pass --force "
                 "to overwrite\n",
                 args.Get("save", "").c_str());
    return 2;
  }

  TrainedModel trained;
  if (!TrainFromArgs(args, data, &trained)) return 1;
  if (!trained.result.status.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 trained.result.status.ToString().c_str());
    return 1;
  }
  if (trained.result.interrupted) {
    // The model holds mid-run weights; metrics/bundles would be
    // misleading. Exit code 3 tells scripts this is a resumable stop.
    std::fprintf(stderr,
                 "interrupted after %lld epochs; resume with "
                 "`lipformer_cli train ... --resume=%s`\n",
                 static_cast<long long>(trained.result.epochs_run),
                 args.Get("snapshot", "<snapshot>").c_str());
    return 3;
  }
  Forecaster* model = ActiveModel(trained);

  // Extended metrics over (a capped number of) test windows.
  model->SetTraining(false);
  NoGradGuard ng;
  const int64_t n = std::min<int64_t>(data.NumWindows(Split::kTest), 256);
  std::vector<int64_t> ids;
  for (int64_t i = 0; i < n; ++i) ids.push_back(i);
  Batch batch = data.MakeBatch(Split::kTest, ids);
  ExtendedMetrics m =
      ComputeExtendedMetrics(model->Forward(batch).value(), batch.y);
  std::printf("\n%s on %lld test windows:\n", model->name().c_str(),
              static_cast<long long>(n));
  std::printf("  MSE %.4f  MAE %.4f  RSE %.4f  CORR %.4f  sMAPE %.4f\n",
              m.mse, m.mae, m.rse, m.corr, m.smape);
  std::printf("  params %lld, %.2fs/epoch\n",
              static_cast<long long>(model->ParameterCount()),
              trained.result.seconds_per_epoch);
  if (args.Has("save")) {
    const std::string save_path = args.Get("save", "");
    if (trained.dual) {
      // The covariate-enriched model needs the dual encoder at inference;
      // bundles don't carry it, so the trainer-written parameter
      // checkpoint (best-validation weights) is all we can offer.
      std::printf("  best parameter checkpoint at %s (covariate pipeline: "
                  "not a serving bundle)\n",
                  save_path.c_str());
    } else {
      // The trainer restored the best-validation weights above, so the
      // bundle (config + scaler + parameters) snapshots exactly them —
      // loadable by `lipformer_cli serve --load` with no retraining.
      const Status st = serve::SaveModelBundle(save_path, trained.model_name,
                                               trained.options, *model,
                                               data.scaler());
      if (!st.ok()) {
        std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
        return 1;
      }
      std::printf("  serving bundle at %s\n", save_path.c_str());
    }
  }
  return 0;
}

int CmdForecast(const CliArgs& args) {
  TimeSeries series;
  double tr, va, te;
  if (!LoadSeries(args, &series, &tr, &va, &te)) return 1;

  WindowDataset::Options options;
  options.input_len = args.GetInt("input", 96);
  options.pred_len = args.GetInt("horizon", 24);
  options.train_ratio = tr;
  options.val_ratio = va;
  options.test_ratio = te;
  WindowDataset data(series, options);

  TrainedModel trained;
  if (!TrainFromArgs(args, data, &trained)) return 1;
  if (!trained.result.status.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 trained.result.status.ToString().c_str());
    return 1;
  }
  if (trained.result.interrupted) {
    std::fprintf(stderr, "interrupted; no forecast written\n");
    return 3;
  }
  Forecaster* model = ActiveModel(trained);

  model->SetTraining(false);
  NoGradGuard ng;
  const int64_t num_test = data.NumWindows(Split::kTest);
  if (num_test <= 0) {
    std::fprintf(stderr,
                 "error: series too short for input=%lld horizon=%lld "
                 "(no complete test window)\n",
                 static_cast<long long>(options.input_len),
                 static_cast<long long>(options.pred_len));
    return 1;
  }
  Batch batch = data.MakeBatch(Split::kTest, {num_test - 1});
  Tensor pred = model->Forward(batch).value().Reshape(
      {options.pred_len, data.channels()});
  Tensor truth = batch.y.Reshape({options.pred_len, data.channels()});

  TimeSeries out;
  out.values = Concat({data.scaler().InverseTransform(pred),
                       data.scaler().InverseTransform(truth)},
                      1);
  for (int64_t j = 0; j < data.channels(); ++j) {
    out.channel_names.push_back("pred_ch" + std::to_string(j));
  }
  for (int64_t j = 0; j < data.channels(); ++j) {
    out.channel_names.push_back("true_ch" + std::to_string(j));
  }
  if (static_cast<int64_t>(series.timestamps.size()) >= options.pred_len) {
    out.timestamps.assign(series.timestamps.end() - options.pred_len,
                          series.timestamps.end());
  } else {
    // Series without (enough) timestamps: synthesize index-based ones so
    // the output CSV stays well-formed instead of reading past the front
    // of the timestamp vector (UB in the old code).
    out.timestamps = MakeTimestamps(DateTime{}, /*minutes_per_step=*/60,
                                    options.pred_len);
  }
  const std::string out_path = args.Get("out", "forecast.csv");
  Status st = WriteCsvTimeSeries(out_path, out);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (prediction + truth, original units)\n",
              out_path.c_str());
  return 0;
}

bool SplitModelPrefix(const std::string& line, std::string* model,
                      std::string* rest) {
  const size_t bar = line.find('|');
  if (bar == std::string::npos) {
    model->clear();
    *rest = line;
    return true;
  }
  *model = line.substr(0, bar);
  *rest = line.substr(bar + 1);
  return !model->empty();
}

bool ParseRequestValues(const std::string& csv, int64_t expected,
                        std::vector<float>* values, std::string* error) {
  values->clear();
  values->reserve(static_cast<size_t>(expected));
  int64_t fields = 0;
  int64_t bad_field = 0;  // 1-based; 0 = all numeric so far
  std::string bad_token;
  std::stringstream stream(csv);
  std::string field;
  while (std::getline(stream, field, ',')) {
    ++fields;
    double value;
    if (!ParseDouble(field, &value)) {
      // Keep counting: the error should report the line's true field
      // count, not how far parsing got (the old message said "got 2" for
      // a 48-field line whose 3rd field was bad).
      if (bad_field == 0) {
        bad_field = fields;
        bad_token = field;
      }
      continue;
    }
    if (bad_field == 0) values->push_back(static_cast<float>(value));
  }
  if (bad_field == 0 && fields == expected) return true;
  *error = "error: request needs " + std::to_string(expected) +
           " comma-separated numbers, got " + std::to_string(fields);
  if (bad_field != 0) {
    *error += " (field " + std::to_string(bad_field) + ": '" + bad_token +
              "' is not a number)";
  }
  return false;
}

namespace {

// Startup banner for one model's compiled plan.
void PrintPlanBanner(const serve::SessionPlanStats& ps) {
  if (!ps.enabled) {
    std::fprintf(stderr, "inference plan: disabled (module path)\n");
  } else if (!ps.compile_error.empty()) {
    std::fprintf(stderr, "inference plan: fallback to module path (%s)\n",
                 ps.compile_error.c_str());
  } else {
    std::fprintf(stderr,
                 "inference plan: %lld ops, %lld-byte arena, %lld "
                 "constants, %lld prepacked GEMMs, %lld fused "
                 "transposes\n",
                 static_cast<long long>(ps.plan.num_ops),
                 static_cast<long long>(ps.plan.arena_bytes),
                 static_cast<long long>(ps.plan.num_constants),
                 static_cast<long long>(ps.plan.prepacked_gemms),
                 static_cast<long long>(ps.plan.fused_gemm_operands));
    std::fprintf(stderr,
                 "inference plan: fusion %lld GEMM epilogues, %lld "
                 "elementwise chains (%lld ops), %lld passes "
                 "eliminated, %lld arena bytes saved\n",
                 static_cast<long long>(ps.plan.fused_epilogues),
                 static_cast<long long>(ps.plan.fused_chains),
                 static_cast<long long>(ps.plan.fused_chain_ops),
                 static_cast<long long>(ps.plan.passes_eliminated),
                 static_cast<long long>(ps.plan.arena_saved_bytes));
  }
}

// Exit summary of one model's plan-vs-module traffic.
void PrintPlanSummary(const std::string& name,
                      const serve::SessionPlanStats& ps) {
  if (!ps.enabled || !ps.compile_error.empty()) return;
  std::fprintf(stderr,
               "plan '%s': %lld plan / %lld module request(s), %lld "
               "plan(s) compiled\n",
               name.c_str(), static_cast<long long>(ps.plan_requests),
               static_cast<long long>(ps.module_requests),
               static_cast<long long>(ps.plans_compiled));
  for (const serve::PlanOpTiming& t : ps.timings) {
    std::fprintf(stderr, "plan:   %-22s %s calls  %s\n", t.name,
                 FormatCount(static_cast<double>(t.calls)).c_str(),
                 FormatSeconds(static_cast<double>(t.total_ns) * 1e-9)
                     .c_str());
  }
}

// Registry status dump for "!stats" request lines and SIGHUP.
void PrintRegistryStatus(const serve::ModelRegistry& registry) {
  const std::vector<serve::ModelInfo> models = registry.Models();
  std::fprintf(stderr, "registry: %lld model(s)\n",
               static_cast<long long>(models.size()));
  for (const serve::ModelInfo& m : models) {
    std::fprintf(
        stderr,
        "registry:   %s (%s): [%lld,%lld]->[%lld,%lld]%s%s "
        "reloads=%lld failures=%lld submitted=%lld completed=%lld "
        "rejected=%lld expired=%lld p50=%.3fms p99=%.3fms\n",
        m.name.c_str(), m.path.c_str(), static_cast<long long>(m.input_len),
        static_cast<long long>(m.channels), static_cast<long long>(m.pred_len),
        static_cast<long long>(m.channels), m.quantized ? " int8" : "",
        m.plan_enabled ? " plan" : "", static_cast<long long>(m.reloads),
        static_cast<long long>(m.reload_failures),
        static_cast<long long>(m.batcher.submitted),
        static_cast<long long>(m.batcher.completed),
        static_cast<long long>(m.batcher.rejected_full),
        static_cast<long long>(m.batcher.expired),
        m.batcher.p50_latency_seconds * 1e3,
        m.batcher.p99_latency_seconds * 1e3);
    std::fprintf(
        stderr,
        "registry:   %s: breaker=%s trips=%lld shed=%lld nonfinite=%lld "
        "queue=%lld est_batch=%.3fms brownouts=%lld\n",
        m.name.c_str(), serve::BreakerStateName(m.batcher.breaker.state),
        static_cast<long long>(m.batcher.breaker.trips),
        static_cast<long long>(m.batcher.shed_overload),
        static_cast<long long>(m.batcher.nonfinite_answers),
        static_cast<long long>(m.batcher.queue_depth),
        m.batcher.cost_ewma_seconds * 1e3,
        static_cast<long long>(m.batcher.brownout_batches));
    if (!m.last_error.empty()) {
      std::fprintf(stderr, "registry:   %s: last reload error: %s\n",
                   m.name.c_str(), m.last_error.c_str());
    }
  }
}

// One "!health" answer line per model: machine-parseable key=value pairs
// (scripts/check_chaos.sh greps them; keep keys stable).
std::string FormatHealthLines(const serve::ModelRegistry& registry) {
  std::string out;
  char buf[512];
  for (const serve::ModelInfo& m : registry.Models()) {
    std::snprintf(
        buf, sizeof(buf),
        "health model=%s breaker=%s trips=%lld probes=%lld "
        "breaker_rejected=%lld queue=%lld est_batch_ms=%.3f shed=%lld "
        "expired=%lld nonfinite=%lld executed_past_deadline=%lld "
        "brownouts=%lld retry_after_ms=%lld reloads=%lld "
        "reload_failures=%lld",
        m.name.c_str(), serve::BreakerStateName(m.batcher.breaker.state),
        static_cast<long long>(m.batcher.breaker.trips),
        static_cast<long long>(m.batcher.breaker.probes),
        static_cast<long long>(m.batcher.breaker.rejected),
        static_cast<long long>(m.batcher.queue_depth),
        m.batcher.cost_ewma_seconds * 1e3,
        static_cast<long long>(m.batcher.shed_overload),
        static_cast<long long>(m.batcher.expired),
        static_cast<long long>(m.batcher.nonfinite_answers),
        static_cast<long long>(m.batcher.executed_past_deadline),
        static_cast<long long>(m.batcher.brownout_batches),
        static_cast<long long>(m.batcher.breaker.retry_after.count()),
        static_cast<long long>(m.reloads),
        static_cast<long long>(m.reload_failures));
    if (!out.empty()) out += "\n";
    out += buf;
  }
  if (out.empty()) out = "health (no models loaded)";
  return out;
}

}  // namespace

// Request protocol of `serve`: one request per line — the flattened
// row-major [input_len, channels] history as comma-separated numbers,
// optionally routed with a "<model>|" prefix when several models are
// loaded (--load=name=FILE, repeatable; the prefix is required then).
// Each answer line is the flattened [pred_len, channels] prediction (raw
// units), or "error: ..." for malformed/rejected requests. Answers
// stream in input order as each head-of-line request completes (a
// dedicated writer thread), so interactive clients get responses without
// waiting for EOF; requests still coalesce through each model's
// micro-batcher. A "!stats" line or SIGHUP dumps registry status to
// stderr; a per-model summary goes to stderr on exit.
int CmdServe(const CliArgs& args) {
  // --load is repeatable: name=FILE routes by name, bare FILE serves as
  // "default".
  std::vector<std::pair<std::string, std::string>> loads;
  for (const std::string& value : args.GetAll("load")) {
    const size_t eq = value.find('=');
    std::string name =
        eq == std::string::npos ? "default" : value.substr(0, eq);
    std::string path = eq == std::string::npos ? value : value.substr(eq + 1);
    if (name.empty() || path.empty()) {
      std::fprintf(stderr,
                   "error: --load expects FILE or name=FILE, got '%s'\n",
                   value.c_str());
      return 2;
    }
    for (const auto& [existing_name, existing_path] : loads) {
      (void)existing_path;
      if (existing_name == name) {
        std::fprintf(stderr, "error: duplicate --load name '%s'\n",
                     name.c_str());
        return 2;
      }
    }
    loads.emplace_back(std::move(name), std::move(path));
  }
  if (loads.empty()) {
    std::fprintf(stderr,
                 "error: serve needs --load=FILE or --load=name=FILE "
                 "(a bundle written by train --save)\n");
    return 2;
  }

  serve::RegistryOptions registry_options;
  registry_options.session.use_plan = !args.Has("no-plan");
  registry_options.batcher.max_batch_size = args.GetInt("max-batch", 16);
  registry_options.batcher.max_delay =
      std::chrono::milliseconds(args.GetInt("max-delay-ms", 2));
  registry_options.batcher.queue_capacity =
      args.GetInt("queue-capacity", 256);
  registry_options.reload_poll =
      std::chrono::milliseconds(args.GetInt("reload-poll-ms", 200));
  registry_options.batcher.max_queue_delay = std::chrono::microseconds(
      1000 * args.GetInt("max-queue-delay-ms", 0));
  registry_options.batcher.breaker.failure_threshold =
      args.GetInt("breaker-failures", 8);
  registry_options.batcher.breaker.cooldown =
      std::chrono::milliseconds(args.GetInt("breaker-cooldown-ms", 250));
  const std::chrono::microseconds request_deadline(
      1000 * args.GetInt("deadline-ms", 0));
  registry_options.verbose = true;
  if (registry_options.batcher.max_batch_size < 1) {
    std::fprintf(stderr, "error: --max-batch must be >= 1\n");
    return 2;
  }
  if (registry_options.batcher.queue_capacity < 1) {
    std::fprintf(stderr, "error: --queue-capacity must be >= 1\n");
    return 2;
  }
  if (registry_options.reload_poll.count() < 0) {
    std::fprintf(stderr, "error: --reload-poll-ms must be >= 0\n");
    return 2;
  }
  if (request_deadline.count() < 0 ||
      registry_options.batcher.max_queue_delay.count() < 0 ||
      registry_options.batcher.breaker.cooldown.count() < 0) {
    std::fprintf(stderr,
                 "error: --deadline-ms, --max-queue-delay-ms and "
                 "--breaker-cooldown-ms must be >= 0\n");
    return 2;
  }

  serve::ModelRegistry registry(registry_options);
  for (const auto& [name, path] : loads) {
    const Status loaded = registry.Load(name, path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: cannot load model '%s': %s\n",
                   name.c_str(), loaded.ToString().c_str());
      return 1;
    }
  }

  const bool multi = registry.size() > 1;
  for (const auto& [name, path] : loads) {
    (void)path;
    std::shared_ptr<serve::ServingModel> model = registry.Find(name);
    serve::InferenceSession* session = model->session();
    std::fprintf(
        stderr,
        "serving %s as '%s' (input=%lld horizon=%lld channels=%lld); one "
        "request per line: %s%lld comma-separated values\n",
        session->model_name().c_str(), name.c_str(),
        static_cast<long long>(session->input_len()),
        static_cast<long long>(session->pred_len()),
        static_cast<long long>(session->channels()),
        multi ? ("'" + name + "|' then ").c_str() : "",
        static_cast<long long>(session->input_len() * session->channels()));
    PrintPlanBanner(session->plan_stats());
    session->SetPlanProfiling(true);
  }

  std::ifstream file;
  std::istream* in = &std::cin;
  if (args.Has("requests")) {
    file.open(args.Get("requests", ""));
    if (!file) {
      std::fprintf(stderr, "error: cannot open %s\n",
                   args.Get("requests", "").c_str());
      return 1;
    }
    in = &file;
  }

  // Graceful shutdown: the first SIGINT/SIGTERM stops the accept loop
  // below; everything already submitted still drains through the batcher
  // and is answered before exit (a second signal kills the process).
  // SIGHUP requests a registry status dump instead. SIGPIPE must not
  // kill the server from inside the writer thread when a client closes
  // the answer stream mid-flight; the EPIPE surfaces on fflush instead
  // and maps to a clean drain below.
  InstallInterruptHandlers();
  InstallStatsRequestHandler();
  IgnoreSigPipe();

  struct OutputSlot {
    std::string error;  // non-empty: print this instead of a prediction
    std::future<Result<Tensor>> future;
  };
  std::deque<OutputSlot> output_queue;
  std::mutex output_mu;
  std::condition_variable output_cv;
  bool input_done = false;

  // Bugfix: answers used to be printed only after the input loop hit
  // EOF, so an interactive client never saw a response. A writer thread
  // now blocks on the head-of-line future and streams each answer (still
  // in input order) the moment it completes. A client that closes the
  // answer stream mid-flight (EPIPE/EOF on stdout, SIGPIPE ignored
  // above) flips the sink to broken: the writer keeps consuming futures
  // so the batcher drains, stops printing, and requests a graceful
  // shutdown of the accept loop.
  bool sink_broken = false;
  std::thread writer([&] {
    for (;;) {
      OutputSlot slot;
      {
        std::unique_lock<std::mutex> lock(output_mu);
        output_cv.wait(lock,
                       [&] { return input_done || !output_queue.empty(); });
        if (output_queue.empty()) return;  // input done and drained
        slot = std::move(output_queue.front());
        output_queue.pop_front();
      }
      if (!slot.error.empty()) {
        if (!sink_broken) {
          std::printf("%s\n", slot.error.c_str());
          std::fflush(stdout);
        }
      } else {
        Result<Tensor> result = slot.future.get();
        if (sink_broken) continue;  // drain without printing
        if (!result.ok()) {
          std::printf("error: %s\n", result.status().ToString().c_str());
        } else {
          const Tensor& pred = result.value();
          const float* p = pred.data();
          for (int64_t j = 0; j < pred.numel(); ++j) {
            std::printf(j == 0 ? "%g" : ",%g", p[j]);
          }
          std::printf("\n");
        }
        std::fflush(stdout);
      }
      if (!sink_broken && std::ferror(stdout)) {
        sink_broken = true;
        std::fprintf(stderr,
                     "client closed the answer stream (EPIPE); draining "
                     "in-flight requests and shutting down\n");
        RequestInterrupt();
      }
    }
  });
  auto emit = [&](OutputSlot slot) {
    {
      std::lock_guard<std::mutex> lock(output_mu);
      output_queue.push_back(std::move(slot));
    }
    output_cv.notify_one();
  };
  auto emit_error = [&](std::string message) {
    OutputSlot slot;
    slot.error = std::move(message);
    emit(std::move(slot));
  };

  // SIGHUP can arrive while getline below is blocked on an idle stdin,
  // so a small poller services the flag instead of the read loop.
  std::mutex stats_mu;
  std::condition_variable stats_cv;
  bool stats_stop = false;
  std::thread stats_poller([&] {
    std::unique_lock<std::mutex> lock(stats_mu);
    while (!stats_stop) {
      stats_cv.wait_for(lock, std::chrono::milliseconds(100),
                        [&] { return stats_stop; });
      if (stats_stop) return;
      if (ConsumeStatsRequest()) PrintRegistryStatus(registry);
    }
  });

  std::string line;
  while (!InterruptRequested() && std::getline(*in, line)) {
    if (line.empty()) continue;
    if (line == "!stats") {
      PrintRegistryStatus(registry);
      continue;
    }
    if (line == "!health") {
      // Health rides the answer queue so it lands in stream order: a
      // scripted client sees it after the answers to everything it
      // already sent.
      emit_error(FormatHealthLines(registry));
      continue;
    }
    std::string model_name;
    std::string csv;
    if (!SplitModelPrefix(line, &model_name, &csv)) {
      emit_error("error: empty model name before '|'");
      continue;
    }
    if (model_name.empty()) {
      if (multi) {
        emit_error("error: " + std::to_string(registry.size()) +
                   " models are loaded; prefix the request with '<model>|'");
        continue;
      }
      model_name = loads.front().first;
    }
    std::shared_ptr<serve::ServingModel> model = registry.Find(model_name);
    if (model == nullptr) {
      emit_error("error: no model named '" + model_name + "' (see --load)");
      continue;
    }
    const int64_t input_len = model->session()->input_len();
    const int64_t channels = model->session()->channels();
    std::vector<float> values;
    std::string parse_error;
    if (!ParseRequestValues(csv, input_len * channels, &values,
                            &parse_error)) {
      emit_error(std::move(parse_error));
      continue;
    }
    // Bugfix: a --requests file longer than the queue capacity used to
    // overrun the bounded queue and surface backpressure as spurious
    // Unavailable answers; kBlock applies flow control at the producer
    // instead.
    OutputSlot slot;
    slot.future = registry.Submit(
        model_name, Tensor({input_len, channels}, std::move(values)),
        request_deadline, serve::SubmitMode::kBlock);
    emit(std::move(slot));
  }

  if (InterruptRequested()) {
    size_t in_flight = 0;
    {
      std::lock_guard<std::mutex> lock(output_mu);
      in_flight = output_queue.size();
    }
    std::fprintf(stderr,
                 "shutdown requested; draining %lld in-flight request(s)\n",
                 static_cast<long long>(in_flight));
  }

  {
    std::lock_guard<std::mutex> lock(output_mu);
    input_done = true;
  }
  output_cv.notify_all();
  writer.join();
  {
    std::lock_guard<std::mutex> lock(stats_mu);
    stats_stop = true;
  }
  stats_cv.notify_all();
  stats_poller.join();

  registry.Shutdown();
  for (const serve::ModelInfo& m : registry.Models()) {
    std::fprintf(
        stderr,
        "model '%s': served %lld requests in %lld batches (p50 %.3f ms, "
        "p99 %.3f ms, p99.9 %.3f ms, %lld rejected, %lld expired, "
        "%lld shed, %lld nonfinite, %lld breaker trip(s), "
        "%lld reload(s), %lld failed reload(s))\n",
        m.name.c_str(), static_cast<long long>(m.batcher.completed),
        static_cast<long long>(m.batcher.batches),
        m.batcher.p50_latency_seconds * 1e3,
        m.batcher.p99_latency_seconds * 1e3,
        m.batcher.p999_latency_seconds * 1e3,
        static_cast<long long>(m.batcher.rejected_full),
        static_cast<long long>(m.batcher.expired),
        static_cast<long long>(m.batcher.shed_overload),
        static_cast<long long>(m.batcher.nonfinite_answers),
        static_cast<long long>(m.batcher.breaker.trips),
        static_cast<long long>(m.reloads),
        static_cast<long long>(m.reload_failures));
  }
  for (const auto& [name, path] : loads) {
    (void)path;
    std::shared_ptr<serve::ServingModel> model = registry.Find(name);
    if (model != nullptr) {
      PrintPlanSummary(name, model->session()->plan_stats());
    }
  }
  return 0;
}

namespace {
int Usage() {
  std::fprintf(stderr,
               "usage: lipformer_cli <list|train|forecast|serve> "
               "[--options]\n"
               "see the header of src/cli/cli.cc for options\n");
  return 2;
}
}  // namespace

int Main(int argc, char** argv) {
  CliArgs args = Parse(argc, argv);
  const Status valid = ValidateArgs(args);
  if (!valid.ok()) {
    std::fprintf(stderr, "error: %s\n", valid.message().c_str());
    return Usage();
  }
  if (args.Has("threads")) {
    const int64_t threads = args.GetInt("threads", 0);
    if (threads < 1) {
      std::fprintf(stderr, "error: --threads must be >= 1\n");
      return 2;
    }
    SetNumThreads(static_cast<int>(threads));
  }
  if (args.command == "list") return CmdList();
  if (args.command == "train") return CmdTrain(args);
  if (args.command == "forecast") return CmdForecast(args);
  if (args.command == "serve") return CmdServe(args);
  return Usage();
}

}  // namespace cli
}  // namespace lipformer
