#include "cli/cli.h"

// Command-line front end for the library.
//
//   lipformer_cli list
//   lipformer_cli train --model=lipformer --dataset=etth1 [options]
//   lipformer_cli forecast --dataset=weather --out=pred.csv [options]
//
// Common options:
//   --csv=FILE        use a CSV time series instead of a registry dataset
//   --dataset=NAME    registry dataset (see `list`)
//   --scale=X         registry series length fraction (default 0.2)
//   --model=NAME      forecaster (see `list`; default lipformer)
//   --input=N         look-back length (default 96)
//   --horizon=N       forecast length (default 24)
//   --epochs=N        training epochs (default 5)
//   --batch=N         batch size (default 32)
//   --hidden=N        hidden feature size (default 64)
//   --covariates      enable the weak-data-enriching pipeline (lipformer)
//   --save=FILE       write best-validation parameters
//   --out=FILE        (forecast) output CSV path
//   --seed=N          RNG seed
//   --threads=N       tensor-kernel threads (default: LIPF_NUM_THREADS or
//                     hardware concurrency; 1 = serial; results are
//                     bitwise identical for every N)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "common/thread_pool.h"
#include "core/lipformer.h"
#include "data/csv.h"
#include "data/registry.h"
#include "models/factory.h"
#include "train/extended_metrics.h"
#include "train/trainer.h"

namespace lipformer {
namespace cli {
namespace {

}  // namespace

std::string CliArgs::Get(const std::string& key,
                         const std::string& def) const {
  auto it = options.find(key);
  return it == options.end() ? def : it->second;
}

int64_t CliArgs::GetInt(const std::string& key, int64_t def) const {
  auto it = options.find(key);
  return it == options.end() ? def : std::atoll(it->second.c_str());
}

double CliArgs::GetDouble(const std::string& key, double def) const {
  auto it = options.find(key);
  return it == options.end() ? def : std::atof(it->second.c_str());
}

CliArgs Parse(int argc, char** argv) {
  CliArgs args;
  if (argc > 1) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      args.options[arg] = "1";
    } else {
      args.options[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
  return args;
}

int CmdList() {
  std::printf("datasets:\n");
  for (const std::string& name : RegisteredDatasetNames()) {
    DatasetSpec spec = MakeDataset(name, 0.05);
    std::printf("  %-14s %s\n", name.c_str(), spec.description.c_str());
  }
  std::printf("models:\n");
  for (const std::string& name : RegisteredModelNames()) {
    std::printf("  %s\n", name.c_str());
  }
  return 0;
}

// Loads the series selected by --csv / --dataset and fills split ratios.
bool LoadSeries(const CliArgs& args, TimeSeries* series, double* train_ratio,
                double* val_ratio, double* test_ratio) {
  *train_ratio = 0.7;
  *val_ratio = 0.1;
  *test_ratio = 0.2;
  if (args.Has("csv")) {
    Result<TimeSeries> loaded = ReadCsvTimeSeries(args.Get("csv", ""));
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   loaded.status().ToString().c_str());
      return false;
    }
    *series = loaded.MoveValue();
    return true;
  }
  const std::string name = args.Get("dataset", "etth1");
  if (!IsRegisteredDataset(name)) {
    std::fprintf(stderr, "error: unknown dataset '%s' (try `list`)\n",
                 name.c_str());
    return false;
  }
  DatasetSpec spec = MakeDataset(name, args.GetDouble("scale", 0.2));
  *series = spec.series;
  *train_ratio = spec.train_ratio;
  *val_ratio = spec.val_ratio;
  *test_ratio = spec.test_ratio;
  return true;
}

namespace {

struct TrainedModel {
  std::unique_ptr<Forecaster> model;
  std::unique_ptr<LiPFormer> lip;  // set when model_name == lipformer
  std::unique_ptr<DualEncoder> dual;
  TrainResult result;
};

bool TrainFromArgs(const CliArgs& args, WindowDataset& data,
                   TrainedModel* out) {
  const std::string model_name = args.Get("model", "lipformer");
  const int64_t input_len = args.GetInt("input", 96);
  const int64_t horizon = args.GetInt("horizon", 24);

  TrainConfig train;
  train.epochs = args.GetInt("epochs", 5);
  train.patience = std::max<int64_t>(2, train.epochs / 2);
  train.batch_size = args.GetInt("batch", 32);
  train.seed = static_cast<uint64_t>(args.GetInt("seed", 1));
  train.verbose = true;
  if (args.Has("save")) train.checkpoint_path = args.Get("save", "");

  if (model_name == "lipformer") {
    LiPFormerConfig config;
    config.input_len = input_len;
    config.pred_len = horizon;
    config.channels = data.channels();
    config.hidden_dim = args.GetInt("hidden", 64);
    config.seed = train.seed;
    // Largest divisor of T not exceeding 48.
    for (int64_t pl = std::min<int64_t>(48, input_len); pl >= 1; --pl) {
      if (input_len % pl == 0) {
        config.patch_len = pl;
        break;
      }
    }
    out->lip = std::make_unique<LiPFormer>(config);
    if (args.Has("covariates")) {
      Rng rng(train.seed + 1);
      out->dual = std::make_unique<DualEncoder>(
          MakeCovariateConfig(data, horizon), data.channels(), rng);
      PretrainConfig pretrain;
      pretrain.epochs = std::max<int64_t>(2, train.epochs / 2);
      pretrain.verbose = true;
      LiPFormerPipelineResult piped = TrainLiPFormerPipeline(
          out->lip.get(), out->dual.get(), data, pretrain, train);
      out->result = piped.train;
    } else {
      out->result = TrainAndEvaluate(out->lip.get(), data, train);
    }
    return true;
  }

  bool known = false;
  for (const std::string& name : RegisteredModelNames()) {
    if (name == model_name) known = true;
  }
  if (!known) {
    std::fprintf(stderr, "error: unknown model '%s' (try `list`)\n",
                 model_name.c_str());
    return false;
  }
  ForecasterDims dims{input_len, horizon, data.channels()};
  ModelOptions options;
  options.hidden_dim = args.GetInt("hidden", 64);
  options.seed = train.seed;
  options.num_covariates = data.num_numeric_covariates();
  out->model = CreateModel(model_name, dims, options);
  out->result = TrainAndEvaluate(out->model.get(), data, train);
  return true;
}

Forecaster* ActiveModel(TrainedModel& trained) {
  return trained.lip ? static_cast<Forecaster*>(trained.lip.get())
                     : trained.model.get();
}

}  // namespace

int CmdTrain(const CliArgs& args) {
  TimeSeries series;
  double tr, va, te;
  if (!LoadSeries(args, &series, &tr, &va, &te)) return 1;

  WindowDataset::Options options;
  options.input_len = args.GetInt("input", 96);
  options.pred_len = args.GetInt("horizon", 24);
  options.train_ratio = tr;
  options.val_ratio = va;
  options.test_ratio = te;
  WindowDataset data(series, options);

  TrainedModel trained;
  if (!TrainFromArgs(args, data, &trained)) return 1;
  Forecaster* model = ActiveModel(trained);

  // Extended metrics over (a capped number of) test windows.
  model->SetTraining(false);
  NoGradGuard ng;
  const int64_t n = std::min<int64_t>(data.NumWindows(Split::kTest), 256);
  std::vector<int64_t> ids;
  for (int64_t i = 0; i < n; ++i) ids.push_back(i);
  Batch batch = data.MakeBatch(Split::kTest, ids);
  ExtendedMetrics m =
      ComputeExtendedMetrics(model->Forward(batch).value(), batch.y);
  std::printf("\n%s on %lld test windows:\n", model->name().c_str(),
              static_cast<long long>(n));
  std::printf("  MSE %.4f  MAE %.4f  RSE %.4f  CORR %.4f  sMAPE %.4f\n",
              m.mse, m.mae, m.rse, m.corr, m.smape);
  std::printf("  params %lld, %.2fs/epoch\n",
              static_cast<long long>(model->ParameterCount()),
              trained.result.seconds_per_epoch);
  if (args.Has("save")) {
    std::printf("  best checkpoint at %s\n", args.Get("save", "").c_str());
  }
  return 0;
}

int CmdForecast(const CliArgs& args) {
  TimeSeries series;
  double tr, va, te;
  if (!LoadSeries(args, &series, &tr, &va, &te)) return 1;

  WindowDataset::Options options;
  options.input_len = args.GetInt("input", 96);
  options.pred_len = args.GetInt("horizon", 24);
  options.train_ratio = tr;
  options.val_ratio = va;
  options.test_ratio = te;
  WindowDataset data(series, options);

  TrainedModel trained;
  if (!TrainFromArgs(args, data, &trained)) return 1;
  Forecaster* model = ActiveModel(trained);

  model->SetTraining(false);
  NoGradGuard ng;
  const int64_t last = data.NumWindows(Split::kTest) - 1;
  Batch batch = data.MakeBatch(Split::kTest, {last});
  Tensor pred = model->Forward(batch).value().Reshape(
      {options.pred_len, data.channels()});
  Tensor truth = batch.y.Reshape({options.pred_len, data.channels()});

  TimeSeries out;
  out.values = Concat({data.scaler().InverseTransform(pred),
                       data.scaler().InverseTransform(truth)},
                      1);
  for (int64_t j = 0; j < data.channels(); ++j) {
    out.channel_names.push_back("pred_ch" + std::to_string(j));
  }
  for (int64_t j = 0; j < data.channels(); ++j) {
    out.channel_names.push_back("true_ch" + std::to_string(j));
  }
  out.timestamps.assign(series.timestamps.end() - options.pred_len,
                        series.timestamps.end());
  const std::string out_path = args.Get("out", "forecast.csv");
  Status st = WriteCsvTimeSeries(out_path, out);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (prediction + truth, original units)\n",
              out_path.c_str());
  return 0;
}

namespace {
int Usage() {
  std::fprintf(stderr,
               "usage: lipformer_cli <list|train|forecast> [--options]\n"
               "see the header of tools/lipformer_cli.cc for options\n");
  return 2;
}
}  // namespace

int Main(int argc, char** argv) {
  CliArgs args = Parse(argc, argv);
  if (args.Has("threads")) {
    const int64_t threads = args.GetInt("threads", 0);
    if (threads < 1) {
      std::fprintf(stderr, "error: --threads must be >= 1\n");
      return 2;
    }
    SetNumThreads(static_cast<int>(threads));
  }
  if (args.command == "list") return CmdList();
  if (args.command == "train") return CmdTrain(args);
  if (args.command == "forecast") return CmdForecast(args);
  return Usage();
}

}  // namespace cli
}  // namespace lipformer
