#ifndef LIPFORMER_CLI_CLI_H_
#define LIPFORMER_CLI_CLI_H_

#include <cstdint>
#include <map>
#include <string>

#include "data/time_series.h"

// Implementation of the lipformer_cli command-line front end, split into a
// library so argument parsing and command dispatch are unit-testable.
// Commands: list, train, forecast (see tools/lipformer_cli.cc header for
// the option reference).

namespace lipformer {
namespace cli {

struct CliArgs {
  std::string command;
  std::map<std::string, std::string> options;

  bool Has(const std::string& key) const { return options.count(key) > 0; }
  std::string Get(const std::string& key, const std::string& def) const;
  int64_t GetInt(const std::string& key, int64_t def) const;
  double GetDouble(const std::string& key, double def) const;
};

// Parses argv into command + --key[=value] options.
CliArgs Parse(int argc, char** argv);

// Loads the series selected by --csv / --dataset; fills split ratios.
// Returns false (with a message on stderr) on bad input.
bool LoadSeries(const CliArgs& args, TimeSeries* series, double* train_ratio,
                double* val_ratio, double* test_ratio);

int CmdList();
int CmdTrain(const CliArgs& args);
int CmdForecast(const CliArgs& args);

// Dispatches to the command; returns the process exit code.
int Main(int argc, char** argv);

}  // namespace cli
}  // namespace lipformer

#endif  // LIPFORMER_CLI_CLI_H_
