#ifndef LIPFORMER_CLI_CLI_H_
#define LIPFORMER_CLI_CLI_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "data/time_series.h"

// Implementation of the lipformer_cli command-line front end, split into a
// library so argument parsing and command dispatch are unit-testable.
// Commands: list, train, forecast, serve (see src/cli/cli.cc header for
// the option reference).

namespace lipformer {
namespace cli {

// Strict number parsing: the whole string must be consumed. Used by
// ValidateArgs so `--batch=abc` is a usage error instead of silently
// becoming 0 (the old atoll behaviour) and crashing later.
bool ParseInt64(const std::string& s, int64_t* out);
bool ParseDouble(const std::string& s, double* out);

struct CliArgs {
  std::string command;
  std::map<std::string, std::string> options;
  // Every --key=value occurrence in command-line order, repeats included.
  // `options` keeps only the last occurrence; repeatable options (serve
  // --load) read this via GetAll.
  std::vector<std::pair<std::string, std::string>> ordered;
  // Non-option arguments after the command (previously silently ignored;
  // ValidateArgs rejects them).
  std::vector<std::string> stragglers;

  bool Has(const std::string& key) const { return options.count(key) > 0; }
  std::string Get(const std::string& key, const std::string& def) const;
  // Return def when the key is absent or (defensively) malformed;
  // ValidateArgs has already rejected malformed values on the CLI path.
  int64_t GetInt(const std::string& key, int64_t def) const;
  double GetDouble(const std::string& key, double def) const;
  // All values given for a repeatable option, in command-line order.
  std::vector<std::string> GetAll(const std::string& key) const;
};

// Parses argv into command + --key[=value] options + stragglers.
CliArgs Parse(int argc, char** argv);

// Rejects unknown --options, stray non-option arguments and malformed
// numeric values against the known-option table in cli.cc. Every
// occurrence of a repeated option is checked, not just the last one.
Status ValidateArgs(const CliArgs& args);

// Splits an optional "<model>|" routing prefix off a serve request line:
// "m|1,2" -> ("m", "1,2"); no '|' -> ("", line). Returns false when a
// '|' is present but the prefix is empty.
bool SplitModelPrefix(const std::string& line, std::string* model,
                      std::string* rest);

// Parses the comma-separated numbers of a serve request, expecting
// exactly `expected` of them. On failure the error message reports the
// total field count of the line (not the count at the first bad field)
// and names the first malformed token.
bool ParseRequestValues(const std::string& csv, int64_t expected,
                        std::vector<float>* values, std::string* error);

// Loads the series selected by --csv / --dataset; fills split ratios.
// Returns false (with a message on stderr) on bad input.
bool LoadSeries(const CliArgs& args, TimeSeries* series, double* train_ratio,
                double* val_ratio, double* test_ratio);

int CmdList();
int CmdTrain(const CliArgs& args);
int CmdForecast(const CliArgs& args);
// Batched inference from a serving bundle (--load); answers one request
// per input line without retraining. See the cli.cc header for the
// request protocol.
int CmdServe(const CliArgs& args);

// Dispatches to the command; returns the process exit code.
int Main(int argc, char** argv);

}  // namespace cli
}  // namespace lipformer

#endif  // LIPFORMER_CLI_CLI_H_
