#ifndef LIPFORMER_SERVE_BATCHER_H_
#define LIPFORMER_SERVE_BATCHER_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_util/profiler.h"
#include "serve/breaker.h"
#include "serve/session.h"

// Dynamic micro-batching for the inference session. Concurrent callers
// submit single windows; a worker thread coalesces whatever is queued
// into one batched Forward (up to max_batch_size, waiting at most
// max_delay for stragglers), which amortizes per-forward overhead and
// lets the tensor kernels parallelize across the batch instead of
// serializing many tiny forwards behind the session mutex.
//
// Semantics:
//  - Backpressure: Submit on a full queue fails fast with
//    Status::Unavailable (the returned future is immediately ready), or —
//    with SubmitMode::kBlock — waits for the worker to free a slot, so
//    file-driven producers apply flow control instead of bouncing. A
//    kBlock wait never outlives the request's own deadline: it turns
//    into DeadlineExceeded instead of enqueueing dead work.
//  - Deadlines propagate: a request whose deadline passes before its
//    batch is assembled completes with Status::DeadlineExceeded instead
//    of occupying batch slots, with a final shed immediately before the
//    model call so expired work never executes; a nearly-expired
//    head-of-line request caps the coalescing delay so its batch fires
//    while it can still be answered.
//  - Admission control: with a per-batch cost estimate (EWMA over
//    executed batches, seeded from the session's Open-time probe), a
//    request whose deadline cannot survive the estimated queue drain —
//    or, with max_queue_delay set, any request behind a deeper backlog
//    than that — is shed up front with Status::Overloaded plus a
//    retry-after hint, instead of timing out downstream.
//  - Degraded modes: consecutive failures (model errors or non-finite
//    forecasts, which are suppressed into typed Internal errors) trip a
//    per-model circuit breaker (serve/breaker.h) that sheds instantly
//    while open and recovers through half-open probes. Under a deep
//    backlog the worker browns out the coalescing delay (batches fire
//    as soon as the worker is free) to shorten the queue.
//  - Shutdown drains: pending accepted requests are still executed;
//    only new submissions are rejected.
//  - Determinism: results are bitwise identical to an unbatched
//    session->Predict of the same window, whatever batch the request
//    happened to share (see InferenceSession::PredictBatch).

namespace lipformer {
namespace serve {

struct BatcherOptions {
  // Largest coalesced batch per Forward.
  int64_t max_batch_size = 16;
  // How long the worker waits for more requests once one is pending.
  std::chrono::microseconds max_delay{1000};
  // Accepted-but-unexecuted request cap; Submit rejects beyond it.
  int64_t queue_capacity = 256;
  // Admission cap on the estimated queue drain (excluding the request's
  // own batch); zero disables it. Only enforced once a cost estimate
  // exists (executed batches or cost_hint_seconds).
  std::chrono::microseconds max_queue_delay{0};
  // Seeds the per-batch EWMA cost estimate (seconds); the registry fills
  // this from the session's Open-time timed probe. Zero means "no
  // estimate yet": deadline admission stays off until a batch executes.
  double cost_hint_seconds = 0;
  // Per-model circuit breaker; failure_threshold <= 0 disables it.
  BreakerOptions breaker;
};

// What Submit does when the bounded queue is at capacity.
enum class SubmitMode {
  kReject,  // fail fast with Unavailable (server-side backpressure)
  kBlock,   // wait for a slot; only Shutdown turns this into Unavailable
};

struct BatcherStats {
  int64_t submitted = 0;       // accepted requests
  int64_t rejected_full = 0;   // bounced by backpressure
  int64_t expired = 0;         // deadline passed before execution
  int64_t shed_overload = 0;   // admission control (Status::Overloaded)
  int64_t completed = 0;       // answered (ok or model error)
  int64_t nonfinite_answers = 0;  // forecasts suppressed as Internal
  // Requests whose deadline expired inside the tensor-build window right
  // before the model call and were executed anyway. The final pre-
  // execution shed keeps this at 0 for any realistic deadline; the chaos
  // gate asserts it.
  int64_t executed_past_deadline = 0;
  int64_t batches = 0;            // batched Forward calls
  int64_t brownout_batches = 0;   // fired with the coalescing delay cut
  int64_t queue_depth = 0;        // live queued requests right now
  double cost_ewma_seconds = 0;   // current per-batch cost estimate
  BreakerStats breaker;
  double p50_latency_seconds = 0;  // submit -> completion
  double p99_latency_seconds = 0;
  double p999_latency_seconds = 0;  // tail beyond p99: batching stalls
  // histogram[s] = number of executed batches of size s+1
  // (index 0 = size 1 ... index max_batch_size-1 = full batches).
  std::vector<int64_t> batch_size_histogram;
};

class Batcher {
 public:
  // `session` must outlive the batcher.
  Batcher(InferenceSession* session, BatcherOptions options);
  ~Batcher();  // Shutdown()

  Batcher(const Batcher&) = delete;
  Batcher& operator=(const Batcher&) = delete;

  // Enqueues one [input_len, channels] window. The future resolves to the
  // [pred_len, channels] prediction, or to Unavailable (queue full at
  // submit in kReject mode, breaker open, or shut down), Overloaded
  // (admission control shed; message carries a retry-after hint),
  // DeadlineExceeded (deadline hit before execution), Internal (the
  // model produced a non-finite forecast), or an InvalidArgument from
  // shape validation. deadline: zero means none. In kBlock mode a full
  // queue blocks the caller until the worker frees a slot, the request's
  // deadline passes, or the batcher shuts down.
  std::future<Result<Tensor>> Submit(
      Tensor history,
      std::chrono::microseconds deadline = std::chrono::microseconds::zero(),
      SubmitMode mode = SubmitMode::kReject);

  // Stops accepting, executes everything already accepted, joins the
  // worker. Idempotent; called by the destructor.
  void Shutdown();

  BatcherStats Stats() const;

 private:
  struct Request {
    Tensor history;
    std::promise<Result<Tensor>> promise;
    std::chrono::steady_clock::time_point submitted_at;
    std::chrono::steady_clock::time_point deadline;  // epoch == none
    bool has_deadline = false;
    bool probe = false;  // admitted as a half-open breaker probe
  };

  void WorkerLoop();
  // Pops up to max_batch_size requests (expiring stale ones) and answers
  // them with one PredictBatch. Returns false when queue was empty.
  bool RunOneBatch(std::unique_lock<std::mutex>* lock);

  // Queued requests whose deadline has not passed at `now` — the ones
  // that can actually occupy batch slots. Requires mu_ held.
  int64_t LiveQueueCountLocked(std::chrono::steady_clock::time_point now)
      const;
  // Earliest future deadline among queued live requests (epoch when
  // none carry one). Requires mu_ held.
  std::chrono::steady_clock::time_point EarliestDeadlineLocked(
      std::chrono::steady_clock::time_point now) const;
  // Removes expired requests from the queue and bumps expired_; requires
  // mu_ held. The caller must fail the returned promises with
  // DeadlineExceeded after releasing mu_.
  std::vector<Request> SweepExpiredLocked(
      std::chrono::steady_clock::time_point now);

  InferenceSession* session_;
  BatcherOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  // Signalled when the worker pops requests (slots freed) or on
  // shutdown; kBlock submitters wait on it.
  std::condition_variable space_cv_;
  std::deque<Request> queue_;
  bool shutdown_ = false;

  // Stats, guarded by mu_.
  int64_t submitted_ = 0;
  int64_t rejected_full_ = 0;
  int64_t expired_ = 0;
  int64_t shed_overload_ = 0;
  int64_t completed_ = 0;
  int64_t nonfinite_answers_ = 0;
  int64_t executed_past_deadline_ = 0;
  int64_t batches_ = 0;
  int64_t brownout_batches_ = 0;
  // EWMA of executed batch duration (seconds); 0 = no estimate yet.
  double cost_ewma_ = 0;
  CircuitBreaker breaker_;
  std::vector<int64_t> batch_size_histogram_;
  LatencyRecorder latency_;

  std::mutex join_mu_;  // serializes concurrent Shutdown joins
  std::thread worker_;
};

}  // namespace serve
}  // namespace lipformer

#endif  // LIPFORMER_SERVE_BATCHER_H_
