#include "serve/breaker.h"

#include <algorithm>

namespace lipformer {
namespace serve {

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

CircuitBreaker::Admission CircuitBreaker::Admit(Clock::time_point now) {
  if (!enabled()) return Admission::kAdmit;
  switch (state_) {
    case BreakerState::kClosed:
      return Admission::kAdmit;
    case BreakerState::kOpen:
      if (now < open_until_) {
        ++rejected_;
        return Admission::kReject;
      }
      state_ = BreakerState::kHalfOpen;
      probes_in_flight_ = 0;
      probe_successes_ = 0;
      [[fallthrough]];
    case BreakerState::kHalfOpen:
      // One probe in flight at a time: a broken model must see a trickle,
      // not a thundering herd, while it proves itself.
      if (probes_in_flight_ >= 1) {
        ++rejected_;
        return Admission::kReject;
      }
      ++probes_in_flight_;
      ++probes_;
      return Admission::kAdmitProbe;
  }
  return Admission::kAdmit;
}

void CircuitBreaker::OnSuccess(bool probe) {
  if (!enabled()) return;
  consecutive_failures_ = 0;
  if (probe && state_ == BreakerState::kHalfOpen) {
    probes_in_flight_ = std::max<int64_t>(0, probes_in_flight_ - 1);
    if (++probe_successes_ >= options_.half_open_successes) {
      state_ = BreakerState::kClosed;
      probe_successes_ = 0;
    }
  }
}

void CircuitBreaker::OnFailure(bool probe, Clock::time_point now) {
  if (!enabled()) return;
  ++consecutive_failures_;
  if (probe && state_ == BreakerState::kHalfOpen) {
    // The model is still broken: re-open for another cooldown.
    probes_in_flight_ = 0;
    probe_successes_ = 0;
    TripLocked(now);
    return;
  }
  // Results from requests admitted before a trip keep arriving while the
  // breaker is open/half-open; they only feed the failure counter. Only a
  // CLOSED breaker trips on the threshold.
  if (state_ == BreakerState::kClosed &&
      consecutive_failures_ >= options_.failure_threshold) {
    TripLocked(now);
  }
}

void CircuitBreaker::AbandonProbe() {
  if (!enabled()) return;
  probes_in_flight_ = std::max<int64_t>(0, probes_in_flight_ - 1);
}

void CircuitBreaker::TripLocked(Clock::time_point now) {
  state_ = BreakerState::kOpen;
  open_until_ = now + options_.cooldown;
  ++trips_;
}

BreakerStats CircuitBreaker::Stats(Clock::time_point now) const {
  BreakerStats s;
  s.state = state_;
  s.trips = trips_;
  s.probes = probes_;
  s.rejected = rejected_;
  s.consecutive_failures = consecutive_failures_;
  if (enabled() && state_ == BreakerState::kOpen && open_until_ > now) {
    s.retry_after = std::chrono::duration_cast<std::chrono::milliseconds>(
        open_until_ - now);
  }
  return s;
}

}  // namespace serve
}  // namespace lipformer
