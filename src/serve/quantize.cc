#include "serve/quantize.h"

#include <cstring>
#include <map>
#include <utility>
#include <vector>

#include "common/atomic_file.h"
#include "models/factory.h"
#include "nn/linear.h"
#include "serve/checkpoint.h"
#include "serve/session.h"
#include "tensor/gemm_int8.h"

namespace lipformer {
namespace serve {

namespace {
inline int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }
}  // namespace

std::string QuantWeightTensorName(const std::string& param) {
  return "__quant__." + param + ".w8";
}

std::string QuantScaleTensorName(const std::string& param) {
  return "__quant__." + param + ".scale";
}

Status QuantizeBundleFile(const std::string& in_path,
                          const std::string& out_path, bool force) {
  if (!force && PathExists(out_path)) {
    return Status::InvalidArgument(
        "refusing to overwrite existing file " + out_path +
        " (pass --force to replace it)");
  }

  Result<Checkpoint> loaded = ReadCheckpoint(in_path);
  if (!loaded.ok()) return loaded.status();
  const Checkpoint& ckpt = loaded.value();

  std::string model_name;
  ForecasterDims dims;
  ModelOptions options;
  LIPF_RETURN_IF_ERROR(
      ParseBundleConfig(ckpt, in_path, &model_name, &dims, &options));
  if (ckpt.Meta(kMetaQuantized, "") != "") {
    return Status::InvalidArgument(
        in_path + " is already quantized (quantized=" +
        ckpt.Meta(kMetaQuantized, "") + ")");
  }

  // Rebuild the architecture and load the fp32 weights through the
  // verifying loader: after this the module's parameters are the
  // authoritative fp32 values and every name/shape in the file has been
  // checked against the metadata's architecture.
  std::unique_ptr<Forecaster> model = CreateModel(model_name, dims, options);
  model->SetTraining(false);
  model->SetRequiresGrad(false);
  LIPF_RETURN_IF_ERROR(model->LoadParameters(in_path));

  // Parameter names owned by a Linear as its weight matrix.
  std::map<std::string, const Linear*> linear_weights;
  for (auto& [prefix, module] : model->NamedModules()) {
    if (const auto* lin = dynamic_cast<const Linear*>(module)) {
      linear_weights.emplace(prefix.empty() ? "weight" : prefix + ".weight",
                             lin);
    }
  }

  Checkpoint out;
  out.metadata = ckpt.metadata;
  out.metadata[kMetaQuantized] = kQuantSchemeInt8;

  // Reserved tensors (the fitted scaler today) ride along unchanged.
  for (const CheckpointTensor& t : ckpt.tensors) {
    if (t.name.rfind(kReservedTensorPrefix, 0) == 0) {
      out.tensors.push_back({t.name, t.data.Clone()});
    }
  }

  std::vector<std::string> names = model->ParameterNames();
  std::vector<Variable> params = model->Parameters();
  int64_t quantized = 0;
  for (size_t i = 0; i < names.size(); ++i) {
    const Tensor& value = params[i].value();
    auto it = linear_weights.find(names[i]);
    if (it == linear_weights.end()) {
      out.tensors.push_back({names[i], value.Clone()});
      continue;
    }
    const int64_t k = it->second->in_features();
    const int64_t n = it->second->out_features();
    if (k < kQuantMinLinearDim || n < kQuantMinLinearDim) {
      // Too small for int8 to pay for its quantize/dequantize passes;
      // serve this layer fp32 (see kQuantMinLinearDim).
      out.tensors.push_back({names[i], value.Clone()});
      continue;
    }
    std::vector<int8_t> w8(static_cast<size_t>(k * n));
    Tensor scale{Shape{n}};
    QuantizeWeightPerChannel(value.data(), k, n, w8.data(), scale.data());
    // Byte-pack the int8 values into the float-only v2 container; the
    // zero-initialized tail of a partial last float keeps the file
    // content deterministic.
    Tensor packed{Shape{CeilDiv(k * n, 4)}};
    std::memcpy(packed.data(), w8.data(), w8.size());
    out.tensors.push_back({QuantWeightTensorName(names[i]),
                           std::move(packed)});
    out.tensors.push_back({QuantScaleTensorName(names[i]),
                           std::move(scale)});
    ++quantized;
  }
  if (quantized == 0) {
    return Status::InvalidArgument(
        in_path + " has no Linear weights large enough to quantize (model '" +
        model_name + "')");
  }
  return WriteCheckpoint(out_path, out);
}

}  // namespace serve
}  // namespace lipformer
