#ifndef LIPFORMER_SERVE_ARENA_H_
#define LIPFORMER_SERVE_ARENA_H_

#include <cstdint>
#include <utility>
#include <vector>

// Liveness-driven arena layout for AOT inference plans (serve/plan.h).
// The plan compiler walks the program in order, allocating each value at
// its defining step and freeing it after its last use; ArenaLayout turns
// that alloc/free stream into offsets inside one flat slab. Compile-time
// only — the hot path just leases a slab of end() floats per request.

namespace lipformer {
namespace serve {

// Arena offsets are aligned to 16 floats (64 bytes, one cache line) so
// every value starts on the same boundary pooled Storage blocks do.
inline constexpr int64_t kArenaAlignFloats = 16;

inline int64_t ArenaAlignUp(int64_t n) {
  return (n + kArenaAlignFloats - 1) / kArenaAlignFloats * kArenaAlignFloats;
}

// First-fit offset allocator with hole coalescing. All sizes are aligned
// internally; offsets it returns are kArenaAlignFloats-aligned and two
// simultaneously-live allocations never overlap (tested adversarially in
// tests/plan_test.cc).
class ArenaLayout {
 public:
  int64_t Alloc(int64_t numel) {
    const int64_t need = ArenaAlignUp(numel);
    if (need == 0) return 0;
    for (size_t i = 0; i < holes_.size(); ++i) {
      if (holes_[i].second >= need) {
        const int64_t off = holes_[i].first;
        holes_[i].first += need;
        holes_[i].second -= need;
        if (holes_[i].second == 0) holes_.erase(holes_.begin() + i);
        return off;
      }
    }
    const int64_t off = end_;
    end_ += need;
    return off;
  }

  void Free(int64_t off, int64_t numel) {
    const int64_t len = ArenaAlignUp(numel);
    if (len == 0) return;
    // Insert sorted by start, then coalesce with both neighbors.
    size_t i = 0;
    while (i < holes_.size() && holes_[i].first < off) ++i;
    holes_.insert(holes_.begin() + i, {off, len});
    if (i + 1 < holes_.size() &&
        holes_[i].first + holes_[i].second == holes_[i + 1].first) {
      holes_[i].second += holes_[i + 1].second;
      holes_.erase(holes_.begin() + i + 1);
    }
    if (i > 0 &&
        holes_[i - 1].first + holes_[i - 1].second == holes_[i].first) {
      holes_[i - 1].second += holes_[i].second;
      holes_.erase(holes_.begin() + i);
    }
  }

  int64_t end() const { return end_; }

 private:
  std::vector<std::pair<int64_t, int64_t>> holes_;  // {start, len}
  int64_t end_ = 0;
};

}  // namespace serve
}  // namespace lipformer

#endif  // LIPFORMER_SERVE_ARENA_H_
