#include "serve/plan_exec.h"

#include <chrono>

#include "common/logging.h"
#include "nn/linear.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "tensor/ops_raw.h"

namespace lipformer {
namespace serve {

namespace {

inline void RunOp(const PlanOp& op, float* base) {
  // Operand resolution is two loads per input: constant pointer or arena
  // offset, both decided at compile time.
  auto in = [&](size_t i) -> const float* {
    const float* c = op.in_const[i];
    return c != nullptr ? c : base + op.in_off[i];
  };
  float* out = base + op.out_off;

  // Fused-epilogue resolution for kGemm / kQuantLinear: rebuild the
  // GemmEpilogue view against this arena. Cheap (a few loads) and only
  // materialized when the compile pass fused something.
  GemmEpilogue epi_storage;
  const GemmEpilogue* epi = nullptr;
  if (op.ep_has_bias || op.ep_has_res) {
    if (op.ep_has_bias) {
      epi_storage.bias = op.ep_bias_const != nullptr
                             ? op.ep_bias_const
                             : base + op.ep_bias_off;
      epi_storage.act = op.ep_act;
    }
    if (op.ep_has_res) {
      epi_storage.residual = op.ep_res_const != nullptr
                                 ? op.ep_res_const
                                 : base + op.ep_res_off;
      epi_storage.res_op = op.ep_res_op;
      epi_storage.res_is_lhs = op.ep_res_is_lhs;
    }
    epi = &epi_storage;
  }

  switch (op.kind) {
    case trace::OpKind::kBinary:
      raw::BinarySame(static_cast<raw::Bin>(op.sub), in(0), in(1), out,
                      op.d[0]);
      return;
    case trace::OpKind::kBinaryBcast:
      raw::BinaryBcast(static_cast<raw::Bin>(op.sub), in(0), in(1), out,
                       op.aux0.data(), op.aux1.data(), op.aux2.data(),
                       op.d[1], op.d[0]);
      return;
    case trace::OpKind::kUnary:
      raw::Unary(static_cast<raw::Un>(op.sub), op.scalar, in(0), out,
                 op.d[0]);
      return;
    case trace::OpKind::kGemm: {
      GemmBatch batch;
      batch.nbatch = op.d[3];
      batch.a_mat_index = op.aux0.data();
      batch.b_mat_index = op.aux1.data();
      batch.num_b_mats = op.d[4];
      if (!op.a_row_off.empty()) {
        batch.a_row_offset = op.a_row_off.data();
        batch.a_col_offset = op.a_col_off.data();
      }
      if (!op.b_row_off.empty()) {
        batch.b_row_offset = op.b_row_off.data();
        batch.b_col_offset = op.b_col_off.data();
      }
      if (op.prepacked_b != nullptr) {
        PackedGemmBatchedPrepacked(in(0), op.trans_a, op.prepacked_b, out,
                                   op.d[0], op.d[1], op.d[2], batch, epi);
      } else {
        PackedGemmBatched(in(0), op.trans_a, in(1), op.trans_b, out,
                          op.d[0], op.d[1], op.d[2], batch, epi);
      }
      AddMacCount(op.macs);
      return;
    }
    case trace::OpKind::kQuantLinear:
      QuantLinearForward(in(0), op.d[0], op.d[1], op.d[2], *op.packed,
                         in(1), reinterpret_cast<int8_t*>(base + op.a8_off),
                         base + op.rs_off,
                         reinterpret_cast<int32_t*>(base + op.c32_off), out,
                         epi);
      return;
    case trace::OpKind::kPermute:
      raw::PermuteCopy(in(0), out, op.aux0.data(), op.aux1.data(), op.d[1],
                       op.d[0]);
      return;
    case trace::OpKind::kSlice:
      raw::SliceCopy(in(0), out, op.d[0], op.d[1], op.d[2], op.d[3],
                     op.d[4]);
      return;
    case trace::OpKind::kConcat:
      for (size_t i = 0; i < op.in_const.size(); ++i) {
        raw::ConcatCopyOne(in(i), out, op.d[0], op.aux0[i], op.d[1],
                           op.aux1[i], op.d[2]);
      }
      return;
    case trace::OpKind::kSum:
      raw::SumDim(in(0), out, op.d[0], op.d[1], op.d[2]);
      return;
    case trace::OpKind::kSoftmax:
      raw::SoftmaxDim(in(0), out, op.d[0], op.d[1], op.d[2]);
      return;
    case trace::OpKind::kLogSoftmax:
      raw::LogSoftmaxDim(in(0), out, op.d[0], op.d[1], op.d[2]);
      return;
    case trace::OpKind::kScaledMaskedSoftmax:
      raw::ScaledMaskedSoftmaxRows(in(0), out, op.d[0], op.d[1], op.scalar,
                                   op.d[3] != 0 ? in(1) : nullptr, op.d[2]);
      return;
    case trace::OpKind::kAddBiasAct:
      raw::AddBiasActRows(in(0), in(1), out, op.d[0], op.d[1],
                          static_cast<FusedAct>(op.sub));
      return;
    case trace::OpKind::kBroadcastMid:
      raw::BroadcastMidRows(op.sub != 0, in(0), in(1), out, op.d[0],
                            op.d[1], op.d[2]);
      return;
    case trace::OpKind::kFusedChain: {
      // Resolve the compile-time steps against this arena on the stack;
      // chains are short (kMaxChainSteps) so this is a handful of loads.
      raw::ChainStep steps[kMaxChainSteps];
      const int64_t nsteps = static_cast<int64_t>(op.chain.size());
      for (int64_t s = 0; s < nsteps; ++s) {
        const PlanChainStep& ps = op.chain[s];
        raw::ChainStep& st = steps[s];
        st.is_binary = ps.is_binary;
        st.prev_is_a = ps.prev_is_a;
        st.sub = ps.sub;
        st.scalar = ps.scalar;
        if (ps.is_binary) {
          st.other = ps.other_const != nullptr ? ps.other_const
                                               : base + ps.other_off;
          st.row_base = op.chain_bases[ps.base_idx].data();
          st.inner_step = ps.inner_step;
        }
      }
      raw::FusedChainRows(in(0), out, op.d[0], op.d[1], steps, nsteps);
      return;
    }
    case trace::OpKind::kNumKinds:
      break;
  }
  LIPF_CHECK(false) << "unexecutable plan op kind";
}

}  // namespace

void ExecutePlanProgram(const std::vector<PlanOp>& ops, float* base,
                        PlanProfile* profile) {
  if (profile == nullptr) {
    for (const PlanOp& op : ops) RunOp(op, base);
    return;
  }
  for (const PlanOp& op : ops) {
    const auto t0 = std::chrono::steady_clock::now();
    RunOp(op, base);
    const auto t1 = std::chrono::steady_clock::now();
    const int k = static_cast<int>(op.kind);
    profile->calls[k].fetch_add(1, std::memory_order_relaxed);
    profile->ns[k].fetch_add(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count(),
        std::memory_order_relaxed);
  }
}

}  // namespace serve
}  // namespace lipformer
