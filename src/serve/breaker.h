#ifndef LIPFORMER_SERVE_BREAKER_H_
#define LIPFORMER_SERVE_BREAKER_H_

#include <chrono>
#include <cstdint>

// Per-model circuit breaker for the serving path. A model that fails
// requests back-to-back (forward errors, non-finite forecasts) is taken
// out of rotation instead of burning batch slots on work that will fail:
//
//             failure_threshold consecutive failures
//   CLOSED ------------------------------------------> OPEN
//     ^                                                  | cooldown
//     |   half_open_successes probe successes            v
//     +--------------------------------------------- HALF-OPEN
//                     (a probe failure re-trips to OPEN)
//
// While OPEN every request is rejected immediately with a retry-after
// hint. After `cooldown` the breaker admits one probe request at a time
// (HALF-OPEN); `half_open_successes` consecutive probe successes close
// it, a single probe failure re-opens it for another cooldown.
//
// The breaker is NOT internally synchronized: the batcher calls it under
// its own queue mutex (admission in Submit, feedback in RunOneBatch),
// which is also what makes trip/half-open/reset transitions atomic with
// respect to concurrent submitters.

namespace lipformer {
namespace serve {

enum class BreakerState { kClosed, kOpen, kHalfOpen };

const char* BreakerStateName(BreakerState state);

struct BreakerOptions {
  // Consecutive request failures that trip the breaker; <= 0 disables it
  // (Admit always passes, no state is kept).
  int64_t failure_threshold = 8;
  // How long the breaker stays open before probing.
  std::chrono::milliseconds cooldown{250};
  // Consecutive successful probes needed to close again.
  int64_t half_open_successes = 2;
};

// Read-only snapshot for stats surfaces.
struct BreakerStats {
  BreakerState state = BreakerState::kClosed;
  int64_t trips = 0;                  // closed/half-open -> open transitions
  int64_t probes = 0;                 // requests admitted in half-open
  int64_t rejected = 0;               // requests bounced while open
  int64_t consecutive_failures = 0;
  // Suggested client backoff: time until the next probe window (0 when
  // the breaker is not open).
  std::chrono::milliseconds retry_after{0};
};

class CircuitBreaker {
 public:
  using Clock = std::chrono::steady_clock;

  enum class Admission {
    kAdmit,       // closed (or breaker disabled)
    kAdmitProbe,  // half-open: caller must report this request's outcome
                  // with probe=true
    kReject,      // open: shed with retry-after
  };

  explicit CircuitBreaker(BreakerOptions options) : options_(options) {}

  // Admission decision for one request at `now`. An OPEN breaker whose
  // cooldown has elapsed flips to HALF-OPEN and admits the caller as the
  // probe; further callers are rejected until that probe resolves.
  Admission Admit(Clock::time_point now);

  // Outcome of an admitted request. `probe` must be true iff Admit
  // returned kAdmitProbe for it.
  void OnSuccess(bool probe);
  void OnFailure(bool probe, Clock::time_point now);

  // A probe left the system without an outcome (its deadline expired in
  // the queue). Releases the probe slot so recovery cannot wedge behind
  // a probe that will never resolve.
  void AbandonProbe();

  BreakerStats Stats(Clock::time_point now) const;
  BreakerState state() const { return state_; }
  bool enabled() const { return options_.failure_threshold > 0; }

 private:
  void TripLocked(Clock::time_point now);

  BreakerOptions options_;
  BreakerState state_ = BreakerState::kClosed;
  Clock::time_point open_until_{};
  int64_t consecutive_failures_ = 0;
  int64_t probes_in_flight_ = 0;
  int64_t probe_successes_ = 0;
  int64_t trips_ = 0;
  int64_t probes_ = 0;
  int64_t rejected_ = 0;
};

}  // namespace serve
}  // namespace lipformer

#endif  // LIPFORMER_SERVE_BREAKER_H_
