#include "serve/plan.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "tensor/gemm.h"
#include "tensor/storage_pool.h"

namespace lipformer {
namespace serve {

namespace {

// Arena offsets are aligned to 16 floats (64 bytes, one cache line) so
// every value starts on the same boundary pooled Storage blocks do.
constexpr int64_t kArenaAlignFloats = 16;

inline int64_t AlignUp(int64_t n) {
  return (n + kArenaAlignFloats - 1) / kArenaAlignFloats * kArenaAlignFloats;
}

inline int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

// First-fit offset allocator with hole coalescing, driven by the liveness
// walk at compile time. All sizes are pre-aligned.
class ArenaLayout {
 public:
  int64_t Alloc(int64_t numel) {
    const int64_t need = AlignUp(numel);
    if (need == 0) return 0;
    for (size_t i = 0; i < holes_.size(); ++i) {
      if (holes_[i].second >= need) {
        const int64_t off = holes_[i].first;
        holes_[i].first += need;
        holes_[i].second -= need;
        if (holes_[i].second == 0) holes_.erase(holes_.begin() + i);
        return off;
      }
    }
    const int64_t off = end_;
    end_ += need;
    return off;
  }

  void Free(int64_t off, int64_t numel) {
    const int64_t len = AlignUp(numel);
    if (len == 0) return;
    // Insert sorted by start, then coalesce with both neighbors.
    size_t i = 0;
    while (i < holes_.size() && holes_[i].first < off) ++i;
    holes_.insert(holes_.begin() + i, {off, len});
    if (i + 1 < holes_.size() &&
        holes_[i].first + holes_[i].second == holes_[i + 1].first) {
      holes_[i].second += holes_[i + 1].second;
      holes_.erase(holes_.begin() + i + 1);
    }
    if (i > 0 &&
        holes_[i - 1].first + holes_[i - 1].second == holes_[i].first) {
      holes_[i - 1].second += holes_[i].second;
      holes_.erase(holes_.begin() + i);
    }
  }

  int64_t end() const { return end_; }

 private:
  std::vector<std::pair<int64_t, int64_t>> holes_;  // {start, len}
  int64_t end_ = 0;
};

// Where a traced pointer lives in the compiled program.
struct Loc {
  bool is_const = false;
  int64_t vid = -1;          // activation value id
  const float* cptr = nullptr;  // constant data pointer
};

struct ValueInfo {
  int64_t numel = 0;
  int64_t def = -1;       // emitted-op index that writes it (-1: plan input)
  int64_t last_use = -1;  // last emitted-op index that reads it
  int64_t offset = -1;
};

// Identity-copy detection: a Permute whose gather strides match the
// contiguous row-major strides of the output shape (on all non-size-1
// dims) moves no data — e.g. the head split/merge transposes when
// num_heads == 1, or reordering size-1 dims.
bool PermuteIsIdentity(const std::vector<int64_t>& oshape,
                       const std::vector<int64_t>& gather) {
  int64_t stride = 1;
  for (int64_t d = static_cast<int64_t>(oshape.size()) - 1; d >= 0; --d) {
    if (oshape[d] != 1 && gather[d] != stride) return false;
    stride *= oshape[d];
  }
  return true;
}

bool RecordIsIdentity(const trace::TraceRecord& r) {
  switch (r.kind) {
    case trace::OpKind::kPermute:
      return PermuteIsIdentity(r.aux0, r.aux1);
    case trace::OpKind::kSlice:
      // Full-range slice: start == 0 and len == mid.
      return r.d[3] == 0 && r.d[4] == r.d[1];
    case trace::OpKind::kConcat:
      // Single input spanning the whole concat dim.
      return r.in.size() == 1 && !r.aux0.empty() && r.aux0[0] == r.d[1];
    default:
      return false;
  }
}

// Checks whether a Permute's output (oshape / gather strides over its
// input, see raw::PermuteCopy), read as one row-major [numel/cols, cols]
// matrix, is a separable gather of the permute's *input*:
// input_offset(r, c) == row_off[r] + col_off[c]. This holds whenever the
// row/column split lines up with output dimension boundaries (every row
// starts on a fresh innermost block), which covers plain transposes,
// head splits and the 4-D patch reshuffles alike; it fails when rows
// straddle an inner dimension (the offset is then not separable). Walks
// the full output index space with the gather odometer — compile-time
// only. col_off[0] is always 0.
bool TrySeparable(const std::vector<int64_t>& oshape,
                  const std::vector<int64_t>& gather, int64_t numel,
                  int64_t cols, std::vector<int64_t>* row_off,
                  std::vector<int64_t>* col_off) {
  if (cols <= 0 || numel <= 0 || numel % cols != 0) return false;
  const int64_t nd = static_cast<int64_t>(oshape.size());
  row_off->assign(numel / cols, 0);
  col_off->assign(cols, 0);
  std::vector<int64_t> coord(nd, 0);
  int64_t off = 0;
  for (int64_t idx = 0; idx < numel; ++idx) {
    const int64_t r = idx / cols;
    const int64_t c = idx % cols;
    if (c == 0) {
      (*row_off)[r] = off;
    } else if (r == 0) {
      (*col_off)[c] = off - (*row_off)[0];  // fixed before any r > 0 row
    }
    if (off != (*row_off)[r] + (*col_off)[c]) return false;
    for (int64_t d = nd - 1; d >= 0; --d) {
      off += gather[d];
      if (++coord[d] < oshape[d]) break;
      off -= oshape[d] * gather[d];
      coord[d] = 0;
    }
  }
  return true;
}

Status ValidateBitwise(const InferencePlan& plan, const Tensor& module_out,
                       const Tensor& input, const char* which) {
  Tensor plan_out = plan.Execute(input);
  if (!SameShape(plan_out.shape(), module_out.shape()) ||
      std::memcmp(plan_out.data(), module_out.data(),
                  static_cast<size_t>(module_out.numel()) *
                      sizeof(float)) != 0) {
    return Status::Internal(std::string("compiled plan is not bitwise "
                                        "identical to the module forward (") +
                            which + " input)");
  }
  return Status::OK();
}

}  // namespace

Result<std::shared_ptr<const InferencePlan>> InferencePlan::Compile(
    const ForwardFn& forward, const Tensor& sample_input,
    const Tensor& check_input) {
  LIPF_CHECK(SameShape(sample_input.shape(), check_input.shape()));

  auto plan = std::shared_ptr<InferencePlan>(new InferencePlan());
  plan->input_shape_ = sample_input.shape();

  // ---- Trace ----
  // The recorder stays alive through classification (FindKept resolves
  // constants against its kept set) and is destroyed before the second
  // validation run so that module forward is hook-free.
  auto recorder_holder = std::make_unique<trace::Recorder>();
  trace::Recorder& recorder = *recorder_holder;
  Tensor traced_out = forward(sample_input);
  if (!recorder.ok()) {
    return Status::Internal("model is not plan-compilable: op '" +
                            recorder.unsupported() +
                            "' has data-dependent behavior the trace cannot "
                            "capture");
  }
  plan->output_shape_ = traced_out.shape();

  // ---- Permute -> GEMM operand fusion decisions ----
  // A non-identity Permute consumed only by a GEMM operand is folded into
  // that GEMM's pack phase when the permuted view is a separable gather
  // (TrySeparable) — in this model, the attention head-split transposes
  // on Q, K and V, the channel-independence transposes and the 4-D patch
  // reshuffle feeding the backbone GEMMs. The GEMM then packs straight
  // from the pre-permute source via the GemmBatch row-/column-offset
  // overrides; packing reads the same values in the same order, so the
  // result is bitwise identical, and the validation runs below gate any
  // mistake. The module path cannot have this: it is a plan-only win.
  struct FusedView {
    const float* src = nullptr;    // the permute's input pointer
    std::vector<int64_t> row_off;  // per stored row, all positions/mats
    std::vector<int64_t> col_off;  // per stored column, shared
  };
  // Keyed by GEMM record address, one map per operand slot (A, B).
  std::unordered_map<const trace::TraceRecord*, FusedView> fused_slot[2];
  std::unordered_set<const float*> fused_outs;  // permute outputs removed
  {
    std::unordered_map<const float*, int64_t> uses;
    std::unordered_map<const float*, const trace::TraceRecord*> producer;
    for (const trace::TraceRecord& r : recorder.records()) {
      for (const float* p : r.in) ++uses[p];
      producer[r.out] = &r;
    }
    ++uses[traced_out.data()];  // the plan output counts as a consumer

    for (const trace::TraceRecord& g : recorder.records()) {
      if (g.kind != trace::OpKind::kGemm) continue;
      const int64_t m = g.d[0], n = g.d[1], k = g.d[2];
      for (int slot = 0; slot < 2; ++slot) {
        // A is read as row-major [m, k] matrices only when !trans_a.
        if (slot == 0 && g.trans_a) continue;
        auto pit = producer.find(g.in[slot]);
        if (pit == producer.end()) continue;
        const trace::TraceRecord& perm = *pit->second;
        if (perm.kind != trace::OpKind::kPermute) continue;
        if (RecordIsIdentity(perm)) continue;  // elided for free below
        if (uses[perm.out] != 1) continue;
        // The permute's input must itself be an activation (plan input or
        // another record's output): a fused view of a *constant* B would
        // bypass the dense compile-time prepack.
        if (perm.in[0] != sample_input.data() &&
            producer.find(perm.in[0]) == producer.end()) {
          continue;
        }
        const int64_t rows = slot == 0 ? m : (g.trans_b ? n : k);
        const int64_t cols = slot == 0 ? k : (g.trans_b ? k : n);
        std::vector<int64_t> row_off, col_off;
        if (!TrySeparable(perm.aux0, perm.aux1, perm.d[0], cols, &row_off,
                          &col_off)) {
          continue;
        }
        const int64_t total_rows = static_cast<int64_t>(row_off.size());
        if (rows <= 0 || total_rows % rows != 0) continue;
        const int64_t num_mats = total_rows / rows;
        FusedView fv;
        fv.src = perm.in[0];
        fv.col_off = std::move(col_off);
        bool ok = true;
        if (slot == 0) {
          // Resolve the a_mat_index indirection now: one run of m row
          // offsets per batch position (the GemmBatch contract).
          fv.row_off.resize(g.aux0.size() * static_cast<size_t>(rows));
          for (size_t bi = 0; bi < g.aux0.size() && ok; ++bi) {
            ok = g.aux0[bi] >= 0 && g.aux0[bi] < num_mats;
            if (ok) {
              std::copy(row_off.begin() + g.aux0[bi] * rows,
                        row_off.begin() + (g.aux0[bi] + 1) * rows,
                        fv.row_off.begin() + static_cast<int64_t>(bi) * rows);
            }
          }
        } else {
          // The pack phase reads stored matrix bm into slot bm, so the
          // fused value must hold exactly num_b_mats matrices in order.
          ok = num_mats == g.d[4];
          for (size_t bi = 0; bi < g.aux1.size() && ok; ++bi) {
            ok = g.aux1[bi] >= 0 && g.aux1[bi] < num_mats;
          }
          fv.row_off = std::move(row_off);
        }
        if (!ok) continue;
        fused_slot[slot].emplace(&g, std::move(fv));
        fused_outs.insert(perm.out);
      }
    }
  }

  // ---- Classify + elide + emit ----
  std::unordered_map<const float*, Loc> locs;
  std::vector<ValueInfo> values;
  values.push_back({sample_input.numel(), -1, -1, -1});  // vid 0: input
  locs[sample_input.data()] = Loc{false, 0, nullptr};

  // Per-emitted-op quantized scratch vids (a8, row_scale, c32), -1 if n/a.
  struct ScratchVids {
    int64_t a8 = -1, rs = -1, c32 = -1;
  };
  std::vector<ScratchVids> scratch;

  auto resolve = [&](const float* p) -> Result<Loc> {
    auto it = locs.find(p);
    if (it != locs.end()) return it->second;
    Tensor kept = recorder.FindKept(p);
    if (kept.data() != p) {
      return Status::Internal(
          "traced operand does not correspond to any live tensor (op "
          "produced outside the recorded kernel set)");
    }
    plan->constants_.push_back(kept);
    plan->stats_.num_constants += 1;
    plan->stats_.constant_bytes += kept.numel() * sizeof(float);
    Loc loc;
    loc.is_const = true;
    loc.cptr = p;
    locs.emplace(p, loc);
    return loc;
  };

  for (const trace::TraceRecord& r : recorder.records()) {
    if (fused_outs.count(r.out) != 0) {
      // Permute folded into its consuming GEMM's pack phase: no op, no
      // arena value, and nothing else reads its output.
      plan->stats_.fused_gemm_operands += 1;
      continue;
    }
    const FusedView* fuse_a = nullptr;
    const FusedView* fuse_b = nullptr;
    if (r.kind == trace::OpKind::kGemm) {
      auto fa = fused_slot[0].find(&r);
      if (fa != fused_slot[0].end()) fuse_a = &fa->second;
      auto fb = fused_slot[1].find(&r);
      if (fb != fused_slot[1].end()) fuse_b = &fb->second;
    }

    std::vector<Loc> in_locs;
    in_locs.reserve(r.in.size());
    for (size_t j = 0; j < r.in.size(); ++j) {
      // A fused GEMM operand resolves to the permute's input instead.
      const float* p = j == 0 && fuse_a != nullptr   ? fuse_a->src
                       : j == 1 && fuse_b != nullptr ? fuse_b->src
                                                     : r.in[j];
      Result<Loc> loc = resolve(p);
      if (!loc.ok()) return loc.status();
      in_locs.push_back(loc.value());
    }

    if (RecordIsIdentity(r)) {
      // Alias the output to its (sole) input; no op, no arena value.
      locs[r.out] = in_locs[0];
      plan->stats_.num_elided += 1;
      continue;
    }

    const int64_t i = static_cast<int64_t>(plan->ops_.size());
    PlanOp op;
    op.kind = r.kind;
    op.sub = r.sub;
    op.scalar = r.scalar;
    op.trans_a = r.trans_a;
    op.trans_b = r.trans_b;
    std::copy(r.d, r.d + 5, op.d);
    op.aux0 = r.aux0;
    op.aux1 = r.aux1;
    op.aux2 = r.aux2;
    op.packed = r.packed;
    op.out_numel = r.out_numel;
    op.macs = r.kind == trace::OpKind::kGemm ? r.macs : 0;
    if (fuse_a != nullptr) {
      op.a_row_off = fuse_a->row_off;
      op.a_col_off = fuse_a->col_off;
    }
    if (fuse_b != nullptr) {
      op.b_row_off = fuse_b->row_off;
      op.b_col_off = fuse_b->col_off;
    }
    if (r.kind == trace::OpKind::kConcat) {
      // aux1 becomes the per-input slot offsets (prefix sums of mids).
      op.aux1.assign(r.aux0.size(), 0);
      int64_t off = 0;
      for (size_t j = 0; j < r.aux0.size(); ++j) {
        op.aux1[j] = off;
        off += r.aux0[j];
      }
    }
    for (const Loc& loc : in_locs) {
      if (loc.is_const) {
        op.in_const.push_back(loc.cptr);
        op.in_off.push_back(-1);
      } else {
        op.in_const.push_back(nullptr);
        op.in_off.push_back(loc.vid);  // vid now, rewritten to offset below
        values[loc.vid].last_use = i;
      }
    }

    ScratchVids sv;
    if (r.kind == trace::OpKind::kQuantLinear) {
      const int64_t m = r.d[0], in_f = r.d[1], out_f = r.d[2];
      sv.a8 = static_cast<int64_t>(values.size());
      values.push_back({CeilDiv(m * in_f, 4), i, i, -1});
      sv.rs = static_cast<int64_t>(values.size());
      values.push_back({m, i, i, -1});
      sv.c32 = static_cast<int64_t>(values.size());
      values.push_back({m * out_f, i, i, -1});
    }
    scratch.push_back(sv);

    const int64_t out_vid = static_cast<int64_t>(values.size());
    values.push_back({r.out_numel, i, i, -1});
    locs[r.out] = Loc{false, out_vid, nullptr};
    op.out_off = out_vid;  // vid now, rewritten to offset below
    plan->ops_.push_back(std::move(op));
  }

  plan->stats_.num_traced =
      static_cast<int64_t>(recorder.records().size());
  plan->stats_.num_ops = static_cast<int64_t>(plan->ops_.size());
  plan->stats_.batch_size =
      sample_input.dim() > 0 ? sample_input.size(0) : 1;

  // ---- Output location ----
  const int64_t num_ops = static_cast<int64_t>(plan->ops_.size());
  int64_t output_vid = -1;
  {
    Result<Loc> loc = resolve(traced_out.data());
    if (!loc.ok()) {
      return Status::Internal(
          "the model output was not produced by a recorded kernel");
    }
    const Loc& l = loc.value();
    if (l.is_const) {
      plan->output_const_ = l.cptr;
    } else if (l.vid == 0) {
      plan->output_is_input_ = true;
      values[0].last_use = num_ops;  // input must survive the program
    } else {
      output_vid = l.vid;
      // Keep the output alive through the whole program.
      values[output_vid].last_use = num_ops;
    }
  }

  // ---- Liveness -> arena offsets ----
  {
    ArenaLayout layout;
    // Per-step alloc/free schedules. Values are allocated at their def
    // step before that step frees anything, so an op's output can never
    // overlap its (still-live) inputs — raw kernels forbid aliasing.
    std::vector<std::vector<int64_t>> defs(num_ops + 1);
    std::vector<std::vector<int64_t>> frees(num_ops + 1);
    for (size_t v = 0; v < values.size(); ++v) {
      // A never-read output still gets space (its op writes it); its
      // interval collapses to the def step.
      const int64_t last =
          std::max(values[v].last_use, values[v].def);
      defs[values[v].def + 1].push_back(static_cast<int64_t>(v));
      if (last >= 0 && last < num_ops) {
        frees[last + 1].push_back(static_cast<int64_t>(v));
      }
    }
    // Step s handles defs of op s-1's output (and scratch); step 0 is the
    // plan input. Frees at step s release values last read by op s-1.
    for (int64_t s = 0; s <= num_ops; ++s) {
      for (int64_t v : defs[s]) {
        values[v].offset = layout.Alloc(values[v].numel);
      }
      for (int64_t v : frees[s]) {
        layout.Free(values[v].offset, values[v].numel);
      }
    }
    plan->arena_floats_ = std::max<int64_t>(1, layout.end());
    plan->stats_.arena_floats = plan->arena_floats_;
    plan->stats_.arena_bytes = plan->arena_floats_ * sizeof(float);
  }

  if (values[0].last_use >= 0 || plan->output_is_input_) {
    plan->input_off_ = values[0].offset;
  }
  if (output_vid >= 0) plan->output_off_ = values[output_vid].offset;

  // Rewrite vid references to offsets.
  for (int64_t i = 0; i < num_ops; ++i) {
    PlanOp& op = plan->ops_[i];
    for (size_t j = 0; j < op.in_off.size(); ++j) {
      if (op.in_const[j] == nullptr) {
        op.in_off[j] = values[op.in_off[j]].offset;
      }
    }
    op.out_off = values[op.out_off].offset;
    if (scratch[i].a8 >= 0) {
      op.a8_off = values[scratch[i].a8].offset;
      op.rs_off = values[scratch[i].rs].offset;
      op.c32_off = values[scratch[i].c32].offset;
    }
  }

  // ---- Prepack constant fp32 GEMM weights ----
  for (PlanOp& op : plan->ops_) {
    if (op.kind != trace::OpKind::kGemm || op.in_const[1] == nullptr) {
      continue;
    }
    const int64_t n = op.d[1], k = op.d[2], num_b = op.d[4];
    const int64_t per_mat = PackedGemmBSize(n, k);
    plan->prepacked_.emplace_back(
        static_cast<size_t>(num_b * per_mat));
    std::vector<float>& buf = plan->prepacked_.back();
    for (int64_t bm = 0; bm < num_b; ++bm) {
      PackGemmB(op.in_const[1] + bm * k * n, op.trans_b, n, k,
                buf.data() + bm * per_mat);
    }
    op.prepacked_b = buf.data();
    plan->stats_.prepacked_gemms += 1;
    plan->stats_.prepacked_bytes +=
        static_cast<int64_t>(buf.size() * sizeof(float));
  }

  // ---- Validate: bitwise equality on the trace input, then on a second,
  // different input. The second run catches any input-dependent value
  // that escaped tracing and was wrongly frozen as a constant — such a
  // plan reproduces the traced forward exactly but diverges on fresh
  // data. (Execute itself never records: the raw kernels carry no hooks.)
  LIPF_RETURN_IF_ERROR(
      ValidateBitwise(*plan, traced_out, sample_input, "trace"));
  recorder_holder.reset();  // hook-free module run below
  Tensor check_out = forward(check_input);
  LIPF_RETURN_IF_ERROR(
      ValidateBitwise(*plan, check_out, check_input, "fresh"));
  return std::shared_ptr<const InferencePlan>(plan);
}

Tensor InferencePlan::Execute(const Tensor& input) const {
  LIPF_CHECK(SameShape(input.shape(), input_shape_))
      << "plan compiled for " << ShapeToString(input_shape_) << ", got "
      << ShapeToString(input.shape());
  executions_.fetch_add(1, std::memory_order_relaxed);

  // One pooled slab per request is the only allocation on this path.
  Storage slab = Storage::Acquire(arena_floats_);
  float* base = slab.data();
  if (input_off_ >= 0) {
    std::memcpy(base + input_off_, input.data(),
                static_cast<size_t>(input.numel()) * sizeof(float));
  }

  ExecutePlanProgram(
      ops_, base,
      profiling_.load(std::memory_order_relaxed) ? &profile_ : nullptr);

  Tensor out = Tensor::Empty(output_shape_);
  const float* src = output_const_ != nullptr
                         ? output_const_
                         : base + (output_is_input_ ? input_off_
                                                    : output_off_);
  std::memcpy(out.data(), src,
              static_cast<size_t>(out.numel()) * sizeof(float));
  return out;
}

std::vector<PlanOpTiming> InferencePlan::OpTimings() const {
  std::vector<PlanOpTiming> out;
  for (int k = 0; k < static_cast<int>(trace::OpKind::kNumKinds); ++k) {
    const int64_t calls = profile_.calls[k].load(std::memory_order_relaxed);
    if (calls == 0) continue;
    PlanOpTiming t;
    t.name = trace::OpKindName(static_cast<trace::OpKind>(k));
    t.calls = calls;
    t.total_ns = profile_.ns[k].load(std::memory_order_relaxed);
    out.push_back(t);
  }
  return out;
}

}  // namespace serve
}  // namespace lipformer
