#include "serve/plan.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/logging.h"
#include "serve/arena.h"
#include "tensor/gemm.h"
#include "tensor/ops_raw.h"
#include "tensor/storage_pool.h"

namespace lipformer {
namespace serve {

namespace {

inline int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

// Where a traced pointer lives in the compiled program.
struct Loc {
  bool is_const = false;
  int64_t vid = -1;          // activation value id
  const float* cptr = nullptr;  // constant data pointer
};

struct ValueInfo {
  int64_t numel = 0;
  int64_t def = -1;       // emitted-op index that writes it (-1: plan input)
  int64_t last_use = -1;  // last emitted-op index that reads it
  int64_t offset = -1;
};

// ---- Elementwise-chain fusion helpers ----

bool ChainEligibleKind(trace::OpKind k) {
  return k == trace::OpKind::kUnary || k == trace::OpKind::kBinary ||
         k == trace::OpKind::kBroadcastMid ||
         k == trace::OpKind::kBinaryBcast;
}

// Per-element input offsets of operand `slot` of an eligible elementwise
// op, for every output element in order. Compile-time only; the fusion
// pass compresses these into per-row base tables and verifies the
// compression numerically before trusting it.
std::vector<int64_t> OperandOffsets(const PlanOp& op, int slot,
                                    int64_t numel) {
  std::vector<int64_t> offs(static_cast<size_t>(numel));
  switch (op.kind) {
    case trace::OpKind::kBinary:
      for (int64_t e = 0; e < numel; ++e) offs[e] = e;
      break;
    case trace::OpKind::kBroadcastMid: {
      if (slot == 0) {
        for (int64_t e = 0; e < numel; ++e) offs[e] = e;
        break;
      }
      const int64_t t = op.d[1], c = op.d[2];
      for (int64_t e = 0; e < numel; ++e) {
        offs[e] = ((e / c) / t) * c + e % c;
      }
      break;
    }
    case trace::OpKind::kBinaryBcast: {
      // Odometer over the output shape with this operand's broadcast
      // strides — the exact walk raw::BinaryBcast performs.
      const int64_t nd = op.d[1];
      const std::vector<int64_t>& oshape = op.aux0;
      const std::vector<int64_t>& strides = slot == 0 ? op.aux1 : op.aux2;
      std::vector<int64_t> idx(static_cast<size_t>(nd), 0);
      int64_t off = 0;
      for (int64_t e = 0; e < numel; ++e) {
        offs[e] = off;
        for (int64_t d = nd - 1; d >= 0; --d) {
          ++idx[d];
          off += strides[d];
          if (idx[d] < oshape[d]) break;
          idx[d] = 0;
          off -= strides[d] * oshape[d];
        }
      }
      break;
    }
    default:
      LIPF_CHECK(false) << "not an elementwise operand";
  }
  return offs;
}

// Compresses a per-element offset table into rows of width w with a
// per-row base and a uniform inner step of 0 or 1:
//   offs[r * w + j] == (*base)[r] + j * (*step)
// Returns false when the offsets do not have that form (the op then
// cannot join a chain of width w).
bool BuildRowTable(const std::vector<int64_t>& offs, int64_t w,
                   std::vector<int64_t>* base, int64_t* step) {
  const int64_t numel = static_cast<int64_t>(offs.size());
  if (w <= 0 || numel % w != 0) return false;
  const int64_t rows = numel / w;
  base->assign(static_cast<size_t>(rows), 0);
  *step = w > 1 ? offs[1] - offs[0] : 0;
  if (*step != 0 && *step != 1) return false;
  for (int64_t r = 0; r < rows; ++r) {
    const int64_t b = offs[r * w];
    (*base)[r] = b;
    for (int64_t j = 1; j < w; ++j) {
      if (offs[r * w + j] != b + j * *step) return false;
    }
  }
  return true;
}

// Innermost-contiguity candidate width for one fused chain member; the
// final chain width is the gcd over members, re-verified by BuildRowTable.
int64_t ChainWidthCandidate(const PlanOp& op, int64_t numel) {
  switch (op.kind) {
    case trace::OpKind::kUnary:
    case trace::OpKind::kBinary:
      return numel;
    case trace::OpKind::kBroadcastMid:
      return op.d[2];
    case trace::OpKind::kBinaryBcast:
      return op.aux0.empty() ? 1 : op.aux0.back();
    default:
      return 1;
  }
}

// Identity-copy detection: a Permute whose gather strides match the
// contiguous row-major strides of the output shape (on all non-size-1
// dims) moves no data — e.g. the head split/merge transposes when
// num_heads == 1, or reordering size-1 dims.
bool PermuteIsIdentity(const std::vector<int64_t>& oshape,
                       const std::vector<int64_t>& gather) {
  int64_t stride = 1;
  for (int64_t d = static_cast<int64_t>(oshape.size()) - 1; d >= 0; --d) {
    if (oshape[d] != 1 && gather[d] != stride) return false;
    stride *= oshape[d];
  }
  return true;
}

bool RecordIsIdentity(const trace::TraceRecord& r) {
  switch (r.kind) {
    case trace::OpKind::kPermute:
      return PermuteIsIdentity(r.aux0, r.aux1);
    case trace::OpKind::kSlice:
      // Full-range slice: start == 0 and len == mid.
      return r.d[3] == 0 && r.d[4] == r.d[1];
    case trace::OpKind::kConcat:
      // Single input spanning the whole concat dim.
      return r.in.size() == 1 && !r.aux0.empty() && r.aux0[0] == r.d[1];
    default:
      return false;
  }
}

// Checks whether a Permute's output (oshape / gather strides over its
// input, see raw::PermuteCopy), read as one row-major [numel/cols, cols]
// matrix, is a separable gather of the permute's *input*:
// input_offset(r, c) == row_off[r] + col_off[c]. This holds whenever the
// row/column split lines up with output dimension boundaries (every row
// starts on a fresh innermost block), which covers plain transposes,
// head splits and the 4-D patch reshuffles alike; it fails when rows
// straddle an inner dimension (the offset is then not separable). Walks
// the full output index space with the gather odometer — compile-time
// only. col_off[0] is always 0.
bool TrySeparable(const std::vector<int64_t>& oshape,
                  const std::vector<int64_t>& gather, int64_t numel,
                  int64_t cols, std::vector<int64_t>* row_off,
                  std::vector<int64_t>* col_off) {
  if (cols <= 0 || numel <= 0 || numel % cols != 0) return false;
  const int64_t nd = static_cast<int64_t>(oshape.size());
  row_off->assign(numel / cols, 0);
  col_off->assign(cols, 0);
  std::vector<int64_t> coord(nd, 0);
  int64_t off = 0;
  for (int64_t idx = 0; idx < numel; ++idx) {
    const int64_t r = idx / cols;
    const int64_t c = idx % cols;
    if (c == 0) {
      (*row_off)[r] = off;
    } else if (r == 0) {
      (*col_off)[c] = off - (*row_off)[0];  // fixed before any r > 0 row
    }
    if (off != (*row_off)[r] + (*col_off)[c]) return false;
    for (int64_t d = nd - 1; d >= 0; --d) {
      off += gather[d];
      if (++coord[d] < oshape[d]) break;
      off -= oshape[d] * gather[d];
      coord[d] = 0;
    }
  }
  return true;
}

Status ValidateBitwise(const InferencePlan& plan, const Tensor& module_out,
                       const Tensor& input, const char* which) {
  Tensor plan_out = plan.Execute(input);
  if (!SameShape(plan_out.shape(), module_out.shape()) ||
      std::memcmp(plan_out.data(), module_out.data(),
                  static_cast<size_t>(module_out.numel()) *
                      sizeof(float)) != 0) {
    return Status::Internal(std::string("compiled plan is not bitwise "
                                        "identical to the module forward (") +
                            which + " input)");
  }
  return Status::OK();
}

}  // namespace

Result<std::shared_ptr<const InferencePlan>> InferencePlan::Compile(
    const ForwardFn& forward, const Tensor& sample_input,
    const Tensor& check_input) {
  LIPF_CHECK(SameShape(sample_input.shape(), check_input.shape()));

  auto plan = std::shared_ptr<InferencePlan>(new InferencePlan());
  plan->input_shape_ = sample_input.shape();

  // ---- Trace ----
  // The recorder stays alive through classification (FindKept resolves
  // constants against its kept set) and is destroyed before the second
  // validation run so that module forward is hook-free.
  auto recorder_holder = std::make_unique<trace::Recorder>();
  trace::Recorder& recorder = *recorder_holder;
  Tensor traced_out = forward(sample_input);
  if (!recorder.ok()) {
    return Status::Internal("model is not plan-compilable: op '" +
                            recorder.unsupported() +
                            "' has data-dependent behavior the trace cannot "
                            "capture");
  }
  plan->output_shape_ = traced_out.shape();

  // ---- Permute -> GEMM operand fusion decisions ----
  // A non-identity Permute consumed only by a GEMM operand is folded into
  // that GEMM's pack phase when the permuted view is a separable gather
  // (TrySeparable) — in this model, the attention head-split transposes
  // on Q, K and V, the channel-independence transposes and the 4-D patch
  // reshuffle feeding the backbone GEMMs. The GEMM then packs straight
  // from the pre-permute source via the GemmBatch row-/column-offset
  // overrides; packing reads the same values in the same order, so the
  // result is bitwise identical, and the validation runs below gate any
  // mistake. The module path cannot have this: it is a plan-only win.
  struct FusedView {
    const float* src = nullptr;    // the permute's input pointer
    std::vector<int64_t> row_off;  // per stored row, all positions/mats
    std::vector<int64_t> col_off;  // per stored column, shared
  };
  // Keyed by GEMM record address, one map per operand slot (A, B).
  std::unordered_map<const trace::TraceRecord*, FusedView> fused_slot[2];
  std::unordered_set<const float*> fused_outs;  // permute outputs removed
  {
    std::unordered_map<const float*, int64_t> uses;
    std::unordered_map<const float*, const trace::TraceRecord*> producer;
    for (const trace::TraceRecord& r : recorder.records()) {
      for (const float* p : r.in) ++uses[p];
      producer[r.out] = &r;
    }
    ++uses[traced_out.data()];  // the plan output counts as a consumer

    for (const trace::TraceRecord& g : recorder.records()) {
      if (g.kind != trace::OpKind::kGemm) continue;
      const int64_t m = g.d[0], n = g.d[1], k = g.d[2];
      for (int slot = 0; slot < 2; ++slot) {
        // A is read as row-major [m, k] matrices only when !trans_a.
        if (slot == 0 && g.trans_a) continue;
        auto pit = producer.find(g.in[slot]);
        if (pit == producer.end()) continue;
        const trace::TraceRecord& perm = *pit->second;
        if (perm.kind != trace::OpKind::kPermute) continue;
        if (RecordIsIdentity(perm)) continue;  // elided for free below
        if (uses[perm.out] != 1) continue;
        // The permute's input must itself be an activation (plan input or
        // another record's output): a fused view of a *constant* B would
        // bypass the dense compile-time prepack.
        if (perm.in[0] != sample_input.data() &&
            producer.find(perm.in[0]) == producer.end()) {
          continue;
        }
        const int64_t rows = slot == 0 ? m : (g.trans_b ? n : k);
        const int64_t cols = slot == 0 ? k : (g.trans_b ? k : n);
        std::vector<int64_t> row_off, col_off;
        if (!TrySeparable(perm.aux0, perm.aux1, perm.d[0], cols, &row_off,
                          &col_off)) {
          continue;
        }
        const int64_t total_rows = static_cast<int64_t>(row_off.size());
        if (rows <= 0 || total_rows % rows != 0) continue;
        const int64_t num_mats = total_rows / rows;
        FusedView fv;
        fv.src = perm.in[0];
        fv.col_off = std::move(col_off);
        bool ok = true;
        if (slot == 0) {
          // Resolve the a_mat_index indirection now: one run of m row
          // offsets per batch position (the GemmBatch contract).
          fv.row_off.resize(g.aux0.size() * static_cast<size_t>(rows));
          for (size_t bi = 0; bi < g.aux0.size() && ok; ++bi) {
            ok = g.aux0[bi] >= 0 && g.aux0[bi] < num_mats;
            if (ok) {
              std::copy(row_off.begin() + g.aux0[bi] * rows,
                        row_off.begin() + (g.aux0[bi] + 1) * rows,
                        fv.row_off.begin() + static_cast<int64_t>(bi) * rows);
            }
          }
        } else {
          // The pack phase reads stored matrix bm into slot bm, so the
          // fused value must hold exactly num_b_mats matrices in order.
          ok = num_mats == g.d[4];
          for (size_t bi = 0; bi < g.aux1.size() && ok; ++bi) {
            ok = g.aux1[bi] >= 0 && g.aux1[bi] < num_mats;
          }
          fv.row_off = std::move(row_off);
        }
        if (!ok) continue;
        fused_slot[slot].emplace(&g, std::move(fv));
        fused_outs.insert(perm.out);
      }
    }
  }

  // ---- Classify + elide + emit ----
  std::unordered_map<const float*, Loc> locs;
  std::vector<ValueInfo> values;
  values.push_back({sample_input.numel(), -1, -1, -1});  // vid 0: input
  locs[sample_input.data()] = Loc{false, 0, nullptr};

  auto resolve = [&](const float* p) -> Result<Loc> {
    auto it = locs.find(p);
    if (it != locs.end()) return it->second;
    Tensor kept = recorder.FindKept(p);
    if (kept.data() != p) {
      return Status::Internal(
          "traced operand does not correspond to any live tensor (op "
          "produced outside the recorded kernel set)");
    }
    plan->constants_.push_back(kept);
    plan->stats_.num_constants += 1;
    plan->stats_.constant_bytes += kept.numel() * sizeof(float);
    Loc loc;
    loc.is_const = true;
    loc.cptr = p;
    locs.emplace(p, loc);
    return loc;
  };

  for (const trace::TraceRecord& r : recorder.records()) {
    if (fused_outs.count(r.out) != 0) {
      // Permute folded into its consuming GEMM's pack phase: no op, no
      // arena value, and nothing else reads its output.
      plan->stats_.fused_gemm_operands += 1;
      continue;
    }
    const FusedView* fuse_a = nullptr;
    const FusedView* fuse_b = nullptr;
    if (r.kind == trace::OpKind::kGemm) {
      auto fa = fused_slot[0].find(&r);
      if (fa != fused_slot[0].end()) fuse_a = &fa->second;
      auto fb = fused_slot[1].find(&r);
      if (fb != fused_slot[1].end()) fuse_b = &fb->second;
    }

    std::vector<Loc> in_locs;
    in_locs.reserve(r.in.size());
    for (size_t j = 0; j < r.in.size(); ++j) {
      // A fused GEMM operand resolves to the permute's input instead.
      const float* p = j == 0 && fuse_a != nullptr   ? fuse_a->src
                       : j == 1 && fuse_b != nullptr ? fuse_b->src
                                                     : r.in[j];
      Result<Loc> loc = resolve(p);
      if (!loc.ok()) return loc.status();
      in_locs.push_back(loc.value());
    }

    if (RecordIsIdentity(r)) {
      // Alias the output to its (sole) input; no op, no arena value.
      locs[r.out] = in_locs[0];
      plan->stats_.num_elided += 1;
      continue;
    }

    const int64_t i = static_cast<int64_t>(plan->ops_.size());
    PlanOp op;
    op.kind = r.kind;
    op.sub = r.sub;
    op.scalar = r.scalar;
    op.trans_a = r.trans_a;
    op.trans_b = r.trans_b;
    std::copy(r.d, r.d + 5, op.d);
    op.aux0 = r.aux0;
    op.aux1 = r.aux1;
    op.aux2 = r.aux2;
    op.packed = r.packed;
    op.out_numel = r.out_numel;
    op.macs = r.kind == trace::OpKind::kGemm ? r.macs : 0;
    if (fuse_a != nullptr) {
      op.a_row_off = fuse_a->row_off;
      op.a_col_off = fuse_a->col_off;
    }
    if (fuse_b != nullptr) {
      op.b_row_off = fuse_b->row_off;
      op.b_col_off = fuse_b->col_off;
    }
    if (r.kind == trace::OpKind::kConcat) {
      // aux1 becomes the per-input slot offsets (prefix sums of mids).
      op.aux1.assign(r.aux0.size(), 0);
      int64_t off = 0;
      for (size_t j = 0; j < r.aux0.size(); ++j) {
        op.aux1[j] = off;
        off += r.aux0[j];
      }
    }
    for (const Loc& loc : in_locs) {
      if (loc.is_const) {
        op.in_const.push_back(loc.cptr);
        op.in_off.push_back(-1);
      } else {
        op.in_const.push_back(nullptr);
        op.in_off.push_back(loc.vid);  // vid now, rewritten to offset below
        values[loc.vid].last_use = i;
      }
    }

    if (r.kind == trace::OpKind::kQuantLinear) {
      // Quantization scratch rides in the op's a8/rs/c32 slots as vids
      // until the final vid->offset rewrite — the fusion passes below
      // reorder and delete ops, so a side vector indexed by op position
      // would go stale.
      const int64_t m = r.d[0], in_f = r.d[1], out_f = r.d[2];
      op.a8_off = static_cast<int64_t>(values.size());
      values.push_back({CeilDiv(m * in_f, 4), i, i, -1});
      op.rs_off = static_cast<int64_t>(values.size());
      values.push_back({m, i, i, -1});
      op.c32_off = static_cast<int64_t>(values.size());
      values.push_back({m * out_f, i, i, -1});
    }

    const int64_t out_vid = static_cast<int64_t>(values.size());
    values.push_back({r.out_numel, i, i, -1});
    locs[r.out] = Loc{false, out_vid, nullptr};
    op.out_off = out_vid;  // vid now, rewritten to offset below
    plan->ops_.push_back(std::move(op));
  }

  plan->stats_.num_traced =
      static_cast<int64_t>(recorder.records().size());
  plan->stats_.num_ops = static_cast<int64_t>(plan->ops_.size());
  plan->stats_.batch_size =
      sample_input.dim() > 0 ? sample_input.size(0) : 1;

  // ---- Output location ----
  int64_t output_vid = -1;
  {
    Result<Loc> loc = resolve(traced_out.data());
    if (!loc.ok()) {
      return Status::Internal(
          "the model output was not produced by a recorded kernel");
    }
    const Loc& l = loc.value();
    if (l.is_const) {
      plan->output_const_ = l.cptr;
    } else if (l.vid == 0) {
      plan->output_is_input_ = true;
    } else {
      output_vid = l.vid;
    }
  }

  // ---- Liveness + arena layout (rerun after each fusion pass) ----
  // Recomputed from scratch over the current op list: vids whose
  // defining op was fused away stay at def == -1 and get no arena slot.
  auto recompute_liveness = [&]() {
    const int64_t n = static_cast<int64_t>(plan->ops_.size());
    for (ValueInfo& v : values) {
      v.def = -1;
      v.last_use = -1;
      v.offset = -1;
    }
    auto use = [&](int64_t vid, int64_t at) {
      values[vid].last_use = std::max(values[vid].last_use, at);
    };
    for (int64_t i = 0; i < n; ++i) {
      const PlanOp& op = plan->ops_[i];
      for (size_t j = 0; j < op.in_off.size(); ++j) {
        if (op.in_const[j] == nullptr) use(op.in_off[j], i);
      }
      values[op.out_off].def = i;
      if (op.kind == trace::OpKind::kQuantLinear) {
        for (int64_t vid : {op.a8_off, op.rs_off, op.c32_off}) {
          values[vid].def = i;
          values[vid].last_use = i;
        }
      }
      if (op.ep_has_bias && op.ep_bias_const == nullptr) {
        use(op.ep_bias_off, i);
      }
      if (op.ep_has_res && op.ep_res_const == nullptr) {
        use(op.ep_res_off, i);
      }
      for (const PlanChainStep& ps : op.chain) {
        if (ps.is_binary && ps.other_const == nullptr) {
          use(ps.other_off, i);
        }
      }
    }
    // The program output (or aliased input) must survive the program.
    if (output_vid >= 0) values[output_vid].last_use = n;
    if (plan->output_is_input_) values[0].last_use = n;
  };

  auto layout_arena = [&]() -> int64_t {
    const int64_t n = static_cast<int64_t>(plan->ops_.size());
    ArenaLayout layout;
    // Per-step alloc/free schedules. Values are allocated at their def
    // step before that step frees anything, so an op's output can never
    // overlap its (still-live) inputs — raw kernels forbid aliasing.
    std::vector<std::vector<int64_t>> defs(n + 1);
    std::vector<std::vector<int64_t>> frees(n + 1);
    for (size_t v = 0; v < values.size(); ++v) {
      if (values[v].def < 0 && v != 0) continue;  // fused away
      // A never-read output still gets space (its op writes it); its
      // interval collapses to the def step.
      const int64_t last = std::max(values[v].last_use, values[v].def);
      defs[values[v].def + 1].push_back(static_cast<int64_t>(v));
      if (last >= 0 && last < n) {
        frees[last + 1].push_back(static_cast<int64_t>(v));
      }
    }
    // Step s handles defs of op s-1's output (and scratch); step 0 is the
    // plan input. Frees at step s release values last read by op s-1.
    for (int64_t s = 0; s <= n; ++s) {
      for (int64_t v : defs[s]) {
        values[v].offset = layout.Alloc(values[v].numel);
      }
      for (int64_t v : frees[s]) {
        layout.Free(values[v].offset, values[v].numel);
      }
    }
    return layout.end();
  };

  recompute_liveness();
  const int64_t unfused_arena_end = layout_arena();

  // ---- Fusion (DESIGN.md §11 "Fusion pass") ----
  // Two rewrites over the SSA op list, both gated by the bitwise
  // validation runs below exactly like every other compile-time
  // transform. LIPF_NO_FUSE compiles the plan without them
  // (bench_serving uses it to measure the fusion speedup).
  const bool fuse_enabled = std::getenv("LIPF_NO_FUSE") == nullptr;
  int64_t epilogue_absorbed = 0;
  int64_t chains_emitted = 0;
  int64_t chain_ops_absorbed = 0;

  if (fuse_enabled) {
    // ---- GEMM epilogue fusion ----
    // A GEMM (fp32 or quantized) absorbs its sole consumer when that is
    // the bias+activation pass the module path runs right after it
    // (kAddBiasAct over the same rows/cols), and then — or instead — a
    // same-shape residual kBinary. The epilogue runs per cache-hot C
    // region inside the GEMM (raw::GemmEpilogueRegion), so the separate
    // full-tensor passes disappear. The fused op takes the absorbed
    // consumer's position: every epilogue operand was already defined
    // there, and nothing else read the absorbed output (uses == 1), so
    // delaying the def is safe under SSA.
    std::vector<int64_t> uses(values.size(), 0);
    for (const PlanOp& op : plan->ops_) {
      for (size_t j = 0; j < op.in_off.size(); ++j) {
        if (op.in_const[j] == nullptr) ++uses[op.in_off[j]];
      }
    }
    const int64_t n0 = static_cast<int64_t>(plan->ops_.size());
    std::vector<bool> dead(plan->ops_.size(), false);
    for (int64_t i = 0; i < n0; ++i) {
      if (dead[i]) continue;
      PlanOp& g = plan->ops_[i];
      const bool is_gemm = g.kind == trace::OpKind::kGemm;
      if (!is_gemm && g.kind != trace::OpKind::kQuantLinear) continue;
      if (g.ep_has_res) continue;  // epilogue already complete
      const int64_t cols = is_gemm ? g.d[1] : g.d[2];
      const int64_t out_vid = g.out_off;
      if (out_vid == output_vid || uses[out_vid] != 1) continue;
      // Locate the sole consumer (O(n) scan; programs are ~100 ops).
      int64_t j = -1;
      for (int64_t c = i + 1; c < n0 && j < 0; ++c) {
        if (dead[c]) continue;
        const PlanOp& cand = plan->ops_[c];
        for (size_t s = 0; s < cand.in_off.size(); ++s) {
          if (cand.in_const[s] == nullptr && cand.in_off[s] == out_vid) {
            j = c;
            break;
          }
        }
      }
      if (j < 0) continue;  // consumed via an epilogue slot: leave as is
      const PlanOp& cons = plan->ops_[j];
      PlanOp fused;
      if (!g.ep_has_bias && cons.kind == trace::OpKind::kAddBiasAct &&
          cons.in_const[0] == nullptr && cons.in_off[0] == out_vid &&
          cons.d[1] == cols && cons.d[0] * cons.d[1] == g.out_numel) {
        fused = std::move(g);
        fused.ep_has_bias = true;
        fused.ep_bias_const = cons.in_const[1];
        fused.ep_bias_off = cons.in_off[1];
        fused.ep_act = cons.sub;
      } else if (cons.kind == trace::OpKind::kBinary &&
                 cons.d[0] == g.out_numel) {
        // Exactly one operand is the GEMM output (uses == 1 already
        // rules out gemm_out (+) gemm_out); the other is the residual.
        const int res_slot =
            cons.in_const[0] == nullptr && cons.in_off[0] == out_vid ? 1
                                                                     : 0;
        fused = std::move(g);
        fused.ep_has_res = true;
        fused.ep_res_const = cons.in_const[res_slot];
        fused.ep_res_off = cons.in_off[res_slot];
        fused.ep_res_op = cons.sub;
        fused.ep_res_is_lhs = res_slot == 0;
      } else {
        continue;
      }
      fused.out_off = cons.out_off;
      fused.out_numel = cons.out_numel;
      dead[i] = true;
      plan->ops_[j] = std::move(fused);
      ++epilogue_absorbed;
      // The loop revisits position j later (j > i), where a bias-fused
      // GEMM gets its chance to absorb a residual as well.
    }
    std::vector<PlanOp> kept;
    kept.reserve(plan->ops_.size());
    for (size_t idx = 0; idx < plan->ops_.size(); ++idx) {
      if (!dead[idx]) kept.push_back(std::move(plan->ops_[idx]));
    }
    plan->ops_ = std::move(kept);
  }

  if (fuse_enabled) {
    // ---- Elementwise-chain fusion ----
    // A run of adjacent elementwise ops where each output flows straight
    // into the next op (sole consumer, elements read in identity order)
    // collapses into one kFusedChain executed as a single
    // read-modify-write sweep (raw::FusedChainRows): the chain's
    // intermediates never touch memory. Broadcast operands are
    // compressed into per-row base tables; the compression is verified
    // numerically against the exact offsets the unfused kernels walk,
    // and any mismatch simply leaves the run unfused.
    std::vector<int64_t> uses(values.size(), 0);
    for (const PlanOp& op : plan->ops_) {
      for (size_t j = 0; j < op.in_off.size(); ++j) {
        if (op.in_const[j] == nullptr) ++uses[op.in_off[j]];
      }
      // Epilogue slots read values too; miss them and a chain could
      // swallow a value a fused GEMM still needs.
      if (op.ep_has_bias && op.ep_bias_const == nullptr) {
        ++uses[op.ep_bias_off];
      }
      if (op.ep_has_res && op.ep_res_const == nullptr) {
        ++uses[op.ep_res_off];
      }
    }

    // Whether operand `slot` of an eligible op reads element e of the
    // output index space from offset e of its buffer (the "flowing"
    // contract: the chain keeps that value in a register).
    auto identity_slot = [&](const PlanOp& op, int slot) {
      switch (op.kind) {
        case trace::OpKind::kUnary:
        case trace::OpKind::kBroadcastMid:
          return slot == 0;
        case trace::OpKind::kBinary:
          return true;
        case trace::OpKind::kBinaryBcast: {
          const std::vector<int64_t> offs =
              OperandOffsets(op, slot, op.out_numel);
          for (int64_t e = 0; e < op.out_numel; ++e) {
            if (offs[e] != e) return false;
          }
          return true;
        }
        default:
          return false;
      }
    };

    size_t i = 0;
    std::vector<bool> dead(plan->ops_.size(), false);
    while (i < plan->ops_.size()) {
      const PlanOp& head = plan->ops_[i];
      if (!ChainEligibleKind(head.kind) || !identity_slot(head, 0)) {
        ++i;
        continue;
      }
      const int64_t numel = head.out_numel;
      // Extend the run while the next op directly consumes the previous
      // output as its flowing operand.
      std::vector<size_t> run = {i};
      std::vector<int> flow_slot = {0};
      while (static_cast<int64_t>(run.size()) < kMaxChainSteps) {
        const PlanOp& prev = plan->ops_[run.back()];
        const int64_t out_vid = prev.out_off;
        if (out_vid == output_vid || uses[out_vid] != 1) break;
        const size_t nx = run.back() + 1;
        if (nx >= plan->ops_.size()) break;
        const PlanOp& next = plan->ops_[nx];
        if (!ChainEligibleKind(next.kind) || next.out_numel != numel) {
          break;
        }
        int fs = -1;
        for (int s = 0; s < static_cast<int>(next.in_off.size()); ++s) {
          if (next.in_const[s] == nullptr && next.in_off[s] == out_vid) {
            fs = s;
            break;
          }
        }
        if (fs < 0 || !identity_slot(next, fs)) break;
        run.push_back(nx);
        flow_slot.push_back(fs);
      }
      if (run.size() < 2) {
        ++i;
        continue;
      }

      // Chain width: every broadcast operand must be constant within a
      // row of w columns (or dense) — gcd of the per-member candidates.
      int64_t w = numel;
      for (size_t m : run) {
        w = std::gcd(w, ChainWidthCandidate(plan->ops_[m], numel));
      }
      const int64_t rows = numel / w;

      // Build the step list, verifying each non-flowing operand's
      // row-base compression numerically.
      PlanOp fused;
      fused.kind = trace::OpKind::kFusedChain;
      fused.d[0] = rows;
      fused.d[1] = w;
      fused.out_numel = numel;
      bool ok = true;
      for (size_t k = 0; k < run.size() && ok; ++k) {
        const PlanOp& m = plan->ops_[run[k]];
        PlanChainStep st;
        switch (m.kind) {
          case trace::OpKind::kUnary:
            st.is_binary = false;
            st.sub = m.sub;
            st.scalar = m.scalar;
            break;
          case trace::OpKind::kBinary:
          case trace::OpKind::kBinaryBcast:
          case trace::OpKind::kBroadcastMid: {
            st.is_binary = true;
            st.prev_is_a = flow_slot[k] == 0;
            const int other = flow_slot[k] == 0 ? 1 : 0;
            if (m.kind == trace::OpKind::kBroadcastMid) {
              // sub == 1 traces SubBroadcastMid, 0 AddBroadcastMid.
              st.sub = static_cast<int32_t>(m.sub != 0 ? raw::Bin::kSub
                                                       : raw::Bin::kAdd);
            } else {
              st.sub = m.sub;
            }
            st.other_const = m.in_const[other];
            st.other_off = m.in_off[other];
            std::vector<int64_t> base;
            int64_t step = 0;
            ok = BuildRowTable(OperandOffsets(m, other, numel), w, &base,
                               &step);
            if (!ok) break;
            st.base_idx = static_cast<int64_t>(fused.chain_bases.size());
            st.inner_step = step;
            fused.chain_bases.push_back(std::move(base));
            break;
          }
          default:
            ok = false;
            break;
        }
        fused.chain.push_back(st);
      }
      if (!ok) {
        ++i;
        continue;
      }

      const PlanOp& first = plan->ops_[run.front()];
      const PlanOp& last = plan->ops_[run.back()];
      fused.in_const.push_back(first.in_const[0]);
      fused.in_off.push_back(first.in_off[0]);
      fused.out_off = last.out_off;
      chains_emitted += 1;
      chain_ops_absorbed += static_cast<int64_t>(run.size());
      // The fused op takes the run's last slot (all operands defined by
      // then); earlier members die.
      const size_t tail = run.back();
      for (size_t k = 0; k + 1 < run.size(); ++k) dead[run[k]] = true;
      plan->ops_[tail] = std::move(fused);
      i = tail + 1;
    }
    std::vector<PlanOp> kept;
    kept.reserve(plan->ops_.size());
    for (size_t idx = 0; idx < plan->ops_.size(); ++idx) {
      if (!dead[idx]) kept.push_back(std::move(plan->ops_[idx]));
    }
    plan->ops_ = std::move(kept);
  }

  // ---- Final liveness -> arena offsets ----
  recompute_liveness();
  const int64_t arena_end = layout_arena();
  plan->arena_floats_ = std::max<int64_t>(1, arena_end);
  plan->stats_.arena_floats = plan->arena_floats_;
  plan->stats_.arena_bytes = plan->arena_floats_ * sizeof(float);
  plan->stats_.num_ops = static_cast<int64_t>(plan->ops_.size());
  plan->stats_.fused_chains = chains_emitted;
  plan->stats_.fused_chain_ops = chain_ops_absorbed;
  // Every absorbed op was one full read(+read)+write sweep over the
  // tensor; a chain of k ops still makes one sweep, so k-1 disappear.
  plan->stats_.passes_eliminated =
      epilogue_absorbed + (chain_ops_absorbed - chains_emitted);
  plan->stats_.arena_saved_bytes =
      std::max<int64_t>(0, unfused_arena_end - arena_end) *
      static_cast<int64_t>(sizeof(float));
  for (const PlanOp& op : plan->ops_) {
    if (op.ep_has_bias || op.ep_has_res) plan->stats_.fused_epilogues += 1;
  }

  if (values[0].last_use >= 0 || plan->output_is_input_) {
    plan->input_off_ = values[0].offset;
  }
  if (output_vid >= 0) plan->output_off_ = values[output_vid].offset;

  // Rewrite vid references to offsets.
  for (PlanOp& op : plan->ops_) {
    for (size_t j = 0; j < op.in_off.size(); ++j) {
      if (op.in_const[j] == nullptr) {
        op.in_off[j] = values[op.in_off[j]].offset;
      }
    }
    op.out_off = values[op.out_off].offset;
    if (op.kind == trace::OpKind::kQuantLinear) {
      op.a8_off = values[op.a8_off].offset;
      op.rs_off = values[op.rs_off].offset;
      op.c32_off = values[op.c32_off].offset;
    }
    if (op.ep_has_bias && op.ep_bias_const == nullptr) {
      op.ep_bias_off = values[op.ep_bias_off].offset;
    }
    if (op.ep_has_res && op.ep_res_const == nullptr) {
      op.ep_res_off = values[op.ep_res_off].offset;
    }
    for (PlanChainStep& ps : op.chain) {
      if (ps.is_binary && ps.other_const == nullptr) {
        ps.other_off = values[ps.other_off].offset;
      }
    }
  }

  // ---- Prepack constant fp32 GEMM weights ----
  for (PlanOp& op : plan->ops_) {
    if (op.kind != trace::OpKind::kGemm || op.in_const[1] == nullptr) {
      continue;
    }
    const int64_t n = op.d[1], k = op.d[2], num_b = op.d[4];
    const int64_t per_mat = PackedGemmBSize(n, k);
    plan->prepacked_.emplace_back(
        static_cast<size_t>(num_b * per_mat));
    std::vector<float>& buf = plan->prepacked_.back();
    for (int64_t bm = 0; bm < num_b; ++bm) {
      PackGemmB(op.in_const[1] + bm * k * n, op.trans_b, n, k,
                buf.data() + bm * per_mat);
    }
    op.prepacked_b = buf.data();
    plan->stats_.prepacked_gemms += 1;
    plan->stats_.prepacked_bytes +=
        static_cast<int64_t>(buf.size() * sizeof(float));
  }

  // ---- Validate: bitwise equality on the trace input, then on a second,
  // different input. The second run catches any input-dependent value
  // that escaped tracing and was wrongly frozen as a constant — such a
  // plan reproduces the traced forward exactly but diverges on fresh
  // data. (Execute itself never records: the raw kernels carry no hooks.)
  LIPF_RETURN_IF_ERROR(
      ValidateBitwise(*plan, traced_out, sample_input, "trace"));
  recorder_holder.reset();  // hook-free module run below
  Tensor check_out = forward(check_input);
  LIPF_RETURN_IF_ERROR(
      ValidateBitwise(*plan, check_out, check_input, "fresh"));
  return std::shared_ptr<const InferencePlan>(plan);
}

Tensor InferencePlan::Execute(const Tensor& input) const {
  LIPF_CHECK(SameShape(input.shape(), input_shape_))
      << "plan compiled for " << ShapeToString(input_shape_) << ", got "
      << ShapeToString(input.shape());
  executions_.fetch_add(1, std::memory_order_relaxed);

  // One pooled slab per request is the only allocation on this path.
  Storage slab = Storage::Acquire(arena_floats_);
  float* base = slab.data();
  if (input_off_ >= 0) {
    std::memcpy(base + input_off_, input.data(),
                static_cast<size_t>(input.numel()) * sizeof(float));
  }

  ExecutePlanProgram(
      ops_, base,
      profiling_.load(std::memory_order_relaxed) ? &profile_ : nullptr);

  Tensor out = Tensor::Empty(output_shape_);
  const float* src = output_const_ != nullptr
                         ? output_const_
                         : base + (output_is_input_ ? input_off_
                                                    : output_off_);
  std::memcpy(out.data(), src,
              static_cast<size_t>(out.numel()) * sizeof(float));
  return out;
}

std::vector<PlanOpTiming> InferencePlan::OpTimings() const {
  std::vector<PlanOpTiming> out;
  for (int k = 0; k < static_cast<int>(trace::OpKind::kNumKinds); ++k) {
    const int64_t calls = profile_.calls[k].load(std::memory_order_relaxed);
    if (calls == 0) continue;
    PlanOpTiming t;
    t.name = trace::OpKindName(static_cast<trace::OpKind>(k));
    t.calls = calls;
    t.total_ns = profile_.ns[k].load(std::memory_order_relaxed);
    out.push_back(t);
  }
  return out;
}

}  // namespace serve
}  // namespace lipformer
