#include "serve/checkpoint.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>
#include <utility>

#include "common/atomic_file.h"

namespace lipformer {
namespace serve {

namespace {

constexpr char kMagic[8] = {'L', 'P', 'F', 'C', 'K', 'P', 'T', '2'};
constexpr uint32_t kVersion = 2;

// Caps on untrusted length fields, far above anything the library
// produces; they turn corrupt headers into clean errors instead of
// gigabyte allocations.
constexpr uint32_t kMaxStringLen = 1 << 20;       // 1 MiB names/values
constexpr uint32_t kMaxRank = 16;
constexpr uint32_t kMaxEntries = 1 << 24;

// Bounded reader over the checkpoint stream: every primitive read reports
// truncation as a Status instead of leaving the stream in a failed state
// the caller forgets to test.
class Reader {
 public:
  Reader(std::ifstream* in, const std::string& path) : in_(in), path_(path) {}

  Status ReadBytes(void* dst, size_t n, const char* what) {
    in_->read(static_cast<char*>(dst), static_cast<std::streamsize>(n));
    if (static_cast<size_t>(in_->gcount()) != n) {
      return Status::InvalidArgument("truncated checkpoint " + path_ +
                                     ": unexpected EOF in " + what);
    }
    return Status::OK();
  }

  template <typename T>
  Status ReadScalar(T* out, const char* what) {
    return ReadBytes(out, sizeof(T), what);
  }

  Status ReadString(std::string* out, uint32_t max_len, const char* what) {
    uint32_t len = 0;
    LIPF_RETURN_IF_ERROR(ReadScalar(&len, what));
    if (len > max_len) {
      return Status::InvalidArgument(
          "corrupt checkpoint " + path_ + ": implausible length " +
          std::to_string(len) + " in " + what);
    }
    out->resize(len);
    if (len == 0) return Status::OK();
    return ReadBytes(out->data(), len, what);
  }

 private:
  std::ifstream* in_;
  const std::string& path_;
};

template <typename T>
Status AppendScalar(AtomicFile& out, T value) {
  return out.Append(&value, sizeof(T));
}

Status AppendString(AtomicFile& out, const std::string& s) {
  LIPF_RETURN_IF_ERROR(AppendScalar<uint32_t>(
      out, static_cast<uint32_t>(s.size())));
  return out.Append(s.data(), s.size());
}

}  // namespace

const CheckpointTensor* Checkpoint::Find(const std::string& name) const {
  for (const CheckpointTensor& t : tensors) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

std::string Checkpoint::Meta(const std::string& key,
                             const std::string& def) const {
  auto it = metadata.find(key);
  return it == metadata.end() ? def : it->second;
}

Status WriteCheckpoint(const std::string& path, const Checkpoint& ckpt) {
  // All checkpoint writes are crash-durable: a kill (or injected write
  // failure) at any point leaves whatever was previously at `path`
  // byte-identical, never a torn v2 file.
  Result<AtomicFile> created = AtomicFile::Create(path);
  if (!created.ok()) return created.status();
  AtomicFile out = std::move(created.value());
  LIPF_RETURN_IF_ERROR(out.Append(kMagic, sizeof(kMagic)));
  LIPF_RETURN_IF_ERROR(AppendScalar<uint32_t>(out, kVersion));
  LIPF_RETURN_IF_ERROR(AppendScalar<uint32_t>(
      out, static_cast<uint32_t>(ckpt.metadata.size())));
  for (const auto& [key, value] : ckpt.metadata) {
    LIPF_RETURN_IF_ERROR(AppendString(out, key));
    LIPF_RETURN_IF_ERROR(AppendString(out, value));
  }
  LIPF_RETURN_IF_ERROR(AppendScalar<uint32_t>(
      out, static_cast<uint32_t>(ckpt.tensors.size())));
  for (const CheckpointTensor& t : ckpt.tensors) {
    LIPF_RETURN_IF_ERROR(AppendString(out, t.name));
    const Shape& shape = t.data.shape();
    LIPF_RETURN_IF_ERROR(
        AppendScalar<uint32_t>(out, static_cast<uint32_t>(shape.size())));
    for (int64_t d : shape) {
      LIPF_RETURN_IF_ERROR(AppendScalar<int64_t>(out, d));
    }
    const uint64_t bytes =
        static_cast<uint64_t>(t.data.numel()) * sizeof(float);
    LIPF_RETURN_IF_ERROR(AppendScalar<uint64_t>(out, bytes));
    LIPF_RETURN_IF_ERROR(out.Append(t.data.data(), bytes));
  }
  return out.Commit();
}

Result<Checkpoint> ReadCheckpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for read: " + path);

  char magic[sizeof(kMagic)] = {};
  in.read(magic, sizeof(magic));
  const size_t header_bytes = static_cast<size_t>(in.gcount());
  if (header_bytes < sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    // v1 files start with a u64 parameter count instead of a magic; the
    // distinction does not matter for safety (both are rejected), only
    // for the advice in the message.
    return Status::InvalidArgument(
        "not a v2 checkpoint: " + path +
        " (missing LPFCKPT2 magic). If this is a legacy v1 parameter "
        "file, migrate it with `checkpoint_convert --in=" + path +
        " --out=... --model=... <architecture flags>`.");
  }

  Reader reader(&in, path);
  uint32_t version = 0;
  LIPF_RETURN_IF_ERROR(reader.ReadScalar(&version, "version"));
  if (version != kVersion) {
    return Status::InvalidArgument(
        "unsupported checkpoint version " + std::to_string(version) +
        " in " + path + " (this build reads version 2)");
  }

  Checkpoint ckpt;
  uint32_t num_metadata = 0;
  LIPF_RETURN_IF_ERROR(reader.ReadScalar(&num_metadata, "metadata count"));
  if (num_metadata > kMaxEntries) {
    return Status::InvalidArgument("corrupt checkpoint " + path +
                                   ": implausible metadata count");
  }
  for (uint32_t i = 0; i < num_metadata; ++i) {
    std::string key, value;
    LIPF_RETURN_IF_ERROR(reader.ReadString(&key, kMaxStringLen,
                                           "metadata key"));
    LIPF_RETURN_IF_ERROR(reader.ReadString(&value, kMaxStringLen,
                                           "metadata value"));
    ckpt.metadata[key] = std::move(value);
  }

  uint32_t num_tensors = 0;
  LIPF_RETURN_IF_ERROR(reader.ReadScalar(&num_tensors, "tensor count"));
  if (num_tensors > kMaxEntries) {
    return Status::InvalidArgument("corrupt checkpoint " + path +
                                   ": implausible tensor count");
  }
  ckpt.tensors.reserve(num_tensors);
  for (uint32_t i = 0; i < num_tensors; ++i) {
    CheckpointTensor entry;
    LIPF_RETURN_IF_ERROR(reader.ReadString(&entry.name, kMaxStringLen,
                                           "tensor name"));
    uint32_t rank = 0;
    LIPF_RETURN_IF_ERROR(reader.ReadScalar(&rank, "tensor rank"));
    if (rank > kMaxRank) {
      return Status::InvalidArgument("corrupt checkpoint " + path +
                                     ": tensor '" + entry.name +
                                     "' has implausible rank " +
                                     std::to_string(rank));
    }
    Shape shape(rank);
    int64_t numel = 1;
    for (uint32_t d = 0; d < rank; ++d) {
      LIPF_RETURN_IF_ERROR(reader.ReadScalar(&shape[d], "tensor dims"));
      if (shape[d] < 0 ||
          (shape[d] > 0 &&
           numel > std::numeric_limits<int64_t>::max() / shape[d])) {
        return Status::InvalidArgument("corrupt checkpoint " + path +
                                       ": tensor '" + entry.name +
                                       "' has invalid dims");
      }
      numel *= shape[d];
    }
    uint64_t byte_len = 0;
    LIPF_RETURN_IF_ERROR(reader.ReadScalar(&byte_len, "tensor byte length"));
    if (byte_len != static_cast<uint64_t>(numel) * sizeof(float)) {
      return Status::InvalidArgument(
          "corrupt checkpoint " + path + ": tensor '" + entry.name +
          "' byte length " + std::to_string(byte_len) +
          " does not match shape " + ShapeToString(shape));
    }
    entry.data = Tensor::Empty(std::move(shape));
    LIPF_RETURN_IF_ERROR(
        reader.ReadBytes(entry.data.data(), byte_len, "tensor data"));
    ckpt.tensors.push_back(std::move(entry));
  }

  // The file must end exactly after the last tensor: trailing bytes mean
  // the file does not describe what the header promised.
  char extra;
  in.read(&extra, 1);
  if (in.gcount() != 0) {
    return Status::InvalidArgument("corrupt checkpoint " + path +
                                   ": trailing bytes after the last tensor");
  }
  return ckpt;
}

}  // namespace serve
}  // namespace lipformer
