#ifndef LIPFORMER_SERVE_REGISTRY_H_
#define LIPFORMER_SERVE_REGISTRY_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/batcher.h"
#include "serve/session.h"

// Multi-tenant serving: a registry of named InferenceSessions, each with
// its own micro-batcher, behind a read-mostly lock. The hot path (Submit)
// takes a shared lock only long enough to copy a shared_ptr; reloads take
// the exclusive lock only for the pointer swap.
//
// Zero-downtime hot reload: bundles are published with an atomic rename
// (common/atomic_file.h), which the watcher thread detects as a change of
// inode/mtime/size at the registered path. The replacement session is
// opened and validated entirely off the hot path (InferenceSession::Open
// re-runs checkpoint-v2 validation and memcmp-gates the compiled plan
// against the module forward), then swapped in under the exclusive lock;
// the old generation's batcher is drained afterwards, outside any lock.
// A reload that fails validation keeps the old model serving, records the
// error, and remembers the failed file signature so the watcher does not
// retry the same bad file every poll.
//
// Requests in flight during a swap resolve against whichever generation
// admitted them — never a mix — because each generation owns its session
// and batcher, and the old batcher drains everything it accepted.

namespace lipformer {
namespace serve {

struct RegistryOptions {
  // Applied to every session the registry opens (initial load + reloads).
  SessionOptions session;
  // Every model gets its own batcher with these knobs.
  BatcherOptions batcher;
  // Poll cadence of the hot-reload watcher thread; zero disables the
  // watcher (Reload() still works manually).
  std::chrono::milliseconds reload_poll{0};
  // Log load/reload events to stderr (the CLI server wants a journal).
  bool verbose = false;
};

// Identity of the bundle file a session was opened from. An atomic-rename
// publish lands a new inode at the same path, so comparing signatures is
// a race-free change detector (no partially-written file is ever visible
// at the path).
struct FileSignature {
  uint64_t device = 0;
  uint64_t inode = 0;
  uint64_t size = 0;
  int64_t mtime_ns = 0;
  bool operator==(const FileSignature&) const = default;
};

// One generation of one tenant: an immutable-once-open session plus the
// batcher feeding it. Handed out by shared_ptr so a hot reload can swap
// the registry slot while in-flight holders finish against the
// generation that admitted them.
class ServingModel {
 public:
  InferenceSession* session() const { return session_.get(); }
  Batcher* batcher() const { return batcher_.get(); }

 private:
  friend class ModelRegistry;
  ServingModel() = default;
  std::unique_ptr<InferenceSession> session_;
  std::unique_ptr<Batcher> batcher_;
};

// Snapshot of one tenant for status reporting ("!stats" / SIGHUP).
struct ModelInfo {
  std::string name;
  std::string path;
  int64_t input_len = 0;
  int64_t pred_len = 0;
  int64_t channels = 0;
  bool quantized = false;
  bool plan_enabled = false;
  int64_t reloads = 0;          // successful hot swaps since Load
  int64_t reload_failures = 0;  // rejected reload attempts
  std::string last_error;       // from the most recent failed reload
  BatcherStats batcher;
};

class ModelRegistry {
 public:
  explicit ModelRegistry(RegistryOptions options = RegistryOptions());
  ~ModelRegistry();  // Shutdown()

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  // Opens the bundle at `path` and serves it as `name`. Loading an
  // existing name hot-swaps it (old generation drains), like Reload but
  // allowing a different path and a different tensor shape.
  Status Load(const std::string& name, const std::string& path);

  // Re-opens `name`'s bundle from its registered path and swaps it in.
  // On any failure (unreadable file, validation, shape change) the old
  // model keeps serving and the error is recorded in ModelInfo.
  Status Reload(const std::string& name);

  // Current generation of `name`, or nullptr. Holders may use the
  // session/batcher for as long as they keep the shared_ptr; a reload
  // shuts the old batcher down but never invalidates the pointer.
  std::shared_ptr<ServingModel> Find(const std::string& name) const;

  size_t size() const;
  std::vector<std::string> ModelNames() const;
  std::vector<ModelInfo> Models() const;

  // Routes one request to `name`'s batcher. Resolves to NotFound for an
  // unknown name; otherwise behaves like Batcher::Submit, except that a
  // rejection caused purely by a concurrent hot swap (the generation
  // shut down between Find and Submit) is retried on the fresh
  // generation, so callers never see a spurious failure from a reload.
  std::future<Result<Tensor>> Submit(
      const std::string& name, Tensor history,
      std::chrono::microseconds deadline = std::chrono::microseconds::zero(),
      SubmitMode mode = SubmitMode::kReject);

  // Stops the watcher and drains every model's batcher. Idempotent;
  // called by the destructor. Entries stay readable for final stats.
  void Shutdown();

 private:
  struct Entry {
    std::string path;
    FileSignature sig;            // signature of the serving bundle
    FileSignature attempted_sig;  // last signature a reload was tried on
    std::shared_ptr<ServingModel> model;
    int64_t reloads = 0;
    int64_t reload_failures = 0;
    std::string last_error;
  };

  // Opens + validates a session/batcher pair for `path`. On success the
  // out-params are filled; `sig` is the file signature read before open.
  Status OpenModel(const std::string& path, FileSignature* sig,
                   std::shared_ptr<ServingModel>* model) const;
  Status ReloadImpl(const std::string& name, bool from_watcher);
  void WatcherLoop();

  RegistryOptions options_;

  mutable std::shared_mutex mu_;  // guards entries_ and shutdown_
  std::map<std::string, Entry> entries_;
  bool shutdown_ = false;

  // Serializes Load/Reload (open + swap + drain) against each other so
  // two publishes of the same path cannot interleave their swaps.
  std::mutex reload_mu_;

  std::mutex shutdown_mu_;  // serializes concurrent Shutdown calls

  std::mutex watcher_mu_;
  std::condition_variable watcher_cv_;
  bool watcher_stop_ = false;
  std::thread watcher_;
};

}  // namespace serve
}  // namespace lipformer

#endif  // LIPFORMER_SERVE_REGISTRY_H_
