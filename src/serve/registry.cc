#include "serve/registry.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/fault_injection.h"

namespace lipformer {
namespace serve {

namespace {

// stat() the bundle path. Because publishes are atomic renames, whatever
// signature we read corresponds to a complete file.
Result<FileSignature> StatFile(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::NotFound("cannot stat '" + path +
                            "': " + std::strerror(errno));
  }
  FileSignature sig;
  sig.device = static_cast<uint64_t>(st.st_dev);
  sig.inode = static_cast<uint64_t>(st.st_ino);
  sig.size = static_cast<uint64_t>(st.st_size);
  sig.mtime_ns = static_cast<int64_t>(st.st_mtim.tv_sec) * 1000000000 +
                 static_cast<int64_t>(st.st_mtim.tv_nsec);
  return sig;
}

Status ValidateName(const std::string& name) {
  if (name.empty()) {
    return Status::InvalidArgument("model name must not be empty");
  }
  if (name.find_first_of("|,= \t\n") != std::string::npos) {
    return Status::InvalidArgument(
        "model name '" + name +
        "' contains a character reserved by the line protocol "
        "('|', ',', '=', whitespace)");
  }
  return Status::OK();
}

}  // namespace

ModelRegistry::ModelRegistry(RegistryOptions options)
    : options_(std::move(options)) {
  if (options_.reload_poll.count() > 0) {
    watcher_ = std::thread([this] { WatcherLoop(); });
  }
}

ModelRegistry::~ModelRegistry() { Shutdown(); }

Status ModelRegistry::OpenModel(const std::string& path, FileSignature* sig,
                                std::shared_ptr<ServingModel>* model) const {
  // Signature first: if a publish lands between stat and open we serve
  // the newer file under the older signature, and the next watcher poll
  // simply reloads again. The reverse order could mask a publish.
  Result<FileSignature> stat_result = StatFile(path);
  if (!stat_result.ok()) return stat_result.status();
  *sig = stat_result.value();

  Result<std::unique_ptr<InferenceSession>> session =
      InferenceSession::Open(path, options_.session);
  if (!session.ok()) return session.status();

  std::shared_ptr<ServingModel> fresh(new ServingModel());
  fresh->session_ = std::move(session.value());
  // The session's Open-time timed probe seeds the batcher's admission
  // cost model, so deadline-based shedding works from the first request.
  BatcherOptions batcher_options = options_.batcher;
  batcher_options.cost_hint_seconds = fresh->session_->probe_latency_seconds();
  fresh->batcher_ =
      std::make_unique<Batcher>(fresh->session_.get(), batcher_options);
  *model = std::move(fresh);
  return Status::OK();
}

Status ModelRegistry::Load(const std::string& name, const std::string& path) {
  Status name_ok = ValidateName(name);
  if (!name_ok.ok()) return name_ok;

  std::lock_guard<std::mutex> reload_lock(reload_mu_);
  FileSignature sig;
  std::shared_ptr<ServingModel> fresh;
  Status opened = OpenModel(path, &sig, &fresh);
  if (!opened.ok()) return opened;

  std::shared_ptr<ServingModel> old;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    if (shutdown_) {
      return Status::Unavailable("registry is shut down");
    }
    Entry& entry = entries_[name];
    old = std::exchange(entry.model, std::move(fresh));
    entry.path = path;
    entry.sig = sig;
    entry.attempted_sig = sig;
    entry.last_error.clear();
  }
  if (options_.verbose) {
    std::fprintf(stderr, "registry: loaded model '%s' from %s\n",
                 name.c_str(), path.c_str());
  }
  // Drain the replaced generation outside every lock: its batcher may be
  // mid-PredictBatch and Shutdown joins the worker.
  if (old != nullptr) old->batcher_->Shutdown();
  return Status::OK();
}

Status ModelRegistry::Reload(const std::string& name) {
  return ReloadImpl(name, /*from_watcher=*/false);
}

Status ModelRegistry::ReloadImpl(const std::string& name, bool from_watcher) {
  std::lock_guard<std::mutex> reload_lock(reload_mu_);

  std::string path;
  FileSignature current_sig;
  FileSignature attempted_sig;
  std::shared_ptr<ServingModel> current;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (shutdown_) return Status::Unavailable("registry is shut down");
    auto it = entries_.find(name);
    if (it == entries_.end()) {
      return Status::NotFound("no model named '" + name + "'");
    }
    path = it->second.path;
    current_sig = it->second.sig;
    attempted_sig = it->second.attempted_sig;
    current = it->second.model;
  }

  if (from_watcher) {
    // Cheap poll: only react to a file that differs both from what is
    // serving and from the last file we already tried (a bad publish is
    // attempted once, not once per poll).
    Result<FileSignature> now = StatFile(path);
    if (!now.ok()) return Status::OK();  // transiently missing; keep serving
    if (now.value() == current_sig || now.value() == attempted_sig) {
      return Status::OK();
    }
  }

  FileSignature sig;
  std::shared_ptr<ServingModel> fresh;
  Status opened = OpenModel(path, &sig, &fresh);
  if (opened.ok() && current != nullptr) {
    // The slot's tensor shape is part of the serving contract; a reload
    // that changes it would break clients mid-stream. Publish such a
    // bundle under a new name (or a fresh Load) instead.
    InferenceSession* a = current->session();
    InferenceSession* b = fresh->session();
    if (a->input_len() != b->input_len() || a->pred_len() != b->pred_len() ||
        a->channels() != b->channels()) {
      opened = Status::InvalidArgument(
          "reload of '" + name + "' changes tensor shape from [" +
          std::to_string(a->input_len()) + "," +
          std::to_string(a->channels()) + "]->[" +
          std::to_string(a->pred_len()) + "," + std::to_string(a->channels()) +
          "] to [" + std::to_string(b->input_len()) + "," +
          std::to_string(b->channels()) + "]->[" +
          std::to_string(b->pred_len()) + "," + std::to_string(b->channels()) +
          "]; load it under a new name instead");
    }
  }

  if (!opened.ok()) {
    std::shared_ptr<ServingModel> discard = std::move(fresh);
    {
      std::unique_lock<std::shared_mutex> lock(mu_);
      auto it = entries_.find(name);
      if (it != entries_.end()) {
        // Remember what we tried (when the file was readable at all) so
        // the watcher does not re-attempt the identical bad publish.
        Result<FileSignature> now = StatFile(path);
        if (now.ok()) it->second.attempted_sig = now.value();
        ++it->second.reload_failures;
        it->second.last_error = opened.message();
      }
    }
    if (options_.verbose) {
      std::fprintf(stderr,
                   "registry: reload failed for model '%s' (%s); keeping "
                   "previous model: %s\n",
                   name.c_str(), path.c_str(), opened.message().c_str());
    }
    if (discard != nullptr) discard->batcher_->Shutdown();
    return opened;
  }

  std::shared_ptr<ServingModel> old;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    if (shutdown_) {
      // Lost the race with Shutdown; do not swap a live batcher in.
      fresh->batcher_->Shutdown();
      return Status::Unavailable("registry is shut down");
    }
    auto it = entries_.find(name);
    if (it == entries_.end()) {
      fresh->batcher_->Shutdown();
      return Status::NotFound("no model named '" + name + "'");
    }
    old = std::exchange(it->second.model, std::move(fresh));
    it->second.sig = sig;
    it->second.attempted_sig = sig;
    ++it->second.reloads;
    it->second.last_error.clear();
  }
  if (options_.verbose) {
    std::fprintf(stderr, "registry: reloaded model '%s' from %s\n",
                 name.c_str(), path.c_str());
  }
  if (old != nullptr) old->batcher_->Shutdown();
  return Status::OK();
}

std::shared_ptr<ServingModel> ModelRegistry::Find(
    const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) return nullptr;
  return it->second.model;
}

size_t ModelRegistry::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return entries_.size();
}

std::vector<std::string> ModelRegistry::ModelNames() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

std::vector<ModelInfo> ModelRegistry::Models() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<ModelInfo> infos;
  infos.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    ModelInfo info;
    info.name = name;
    info.path = entry.path;
    info.reloads = entry.reloads;
    info.reload_failures = entry.reload_failures;
    info.last_error = entry.last_error;
    if (entry.model != nullptr) {
      const InferenceSession* session = entry.model->session();
      info.input_len = session->input_len();
      info.pred_len = session->pred_len();
      info.channels = session->channels();
      info.quantized = session->quantized();
      info.plan_enabled = session->plan_enabled();
      info.batcher = entry.model->batcher()->Stats();
    }
    infos.push_back(std::move(info));
  }
  return infos;
}

std::future<Result<Tensor>> ModelRegistry::Submit(
    const std::string& name, Tensor history,
    std::chrono::microseconds deadline, SubmitMode mode) {
  using namespace std::chrono_literals;
  // A hot swap between Find and Submit makes the old generation's batcher
  // reject with Unavailable even though the fresh generation is healthy.
  // Detect that exact case — the registry no longer hands out the model
  // we submitted to — and retry on the current generation, so a reload
  // never surfaces as a failed request. Bounded: anything still failing
  // after a handful of swaps is a real availability problem.
  for (int attempt = 0; attempt < 8; ++attempt) {
    std::shared_ptr<ServingModel> model = Find(name);
    if (model == nullptr) {
      std::promise<Result<Tensor>> p;
      p.set_value(Status::NotFound("no model named '" + name +
                                   "' (see --load)"));
      return p.get_future();
    }
    std::future<Result<Tensor>> future =
        model->batcher()->Submit(history, deadline, mode);
    if (future.wait_for(0s) != std::future_status::ready) return future;
    Result<Tensor> result = future.get();
    if (!result.ok() && result.status().code() == StatusCode::kUnavailable &&
        Find(name) != model) {
      continue;  // swapped under us; resubmit to the fresh generation
    }
    std::promise<Result<Tensor>> p;
    p.set_value(std::move(result));
    return p.get_future();
  }
  std::promise<Result<Tensor>> p;
  p.set_value(Status::Unavailable("model '" + name +
                                  "' kept reloading across retries"));
  return p.get_future();
}

void ModelRegistry::Shutdown() {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  {
    std::lock_guard<std::mutex> lock(watcher_mu_);
    watcher_stop_ = true;
  }
  watcher_cv_.notify_all();
  if (watcher_.joinable()) watcher_.join();

  std::vector<std::shared_ptr<ServingModel>> models;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    shutdown_ = true;
    for (const auto& [name, entry] : entries_) {
      if (entry.model != nullptr) models.push_back(entry.model);
    }
  }
  // Drain outside the lock; entries stay readable for final stats.
  for (const std::shared_ptr<ServingModel>& model : models) {
    model->batcher_->Shutdown();
  }
}

void ModelRegistry::WatcherLoop() {
  std::unique_lock<std::mutex> lock(watcher_mu_);
  while (!watcher_stop_) {
    watcher_cv_.wait_for(lock, options_.reload_poll,
                         [this] { return watcher_stop_; });
    if (watcher_stop_) return;
    lock.unlock();
    // Chaos hook: a stalled watcher (slow disk, cgroup throttling) must
    // only delay reloads, never serving — check_chaos.sh asserts that.
    const int64_t stall_ms = fault::WatcherStallMs();
    if (stall_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms));
    }
    std::vector<std::string> names = ModelNames();
    for (const std::string& name : names) {
      (void)ReloadImpl(name, /*from_watcher=*/true);
    }
    lock.lock();
  }
}

}  // namespace serve
}  // namespace lipformer
