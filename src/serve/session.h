#ifndef LIPFORMER_SERVE_SESSION_H_
#define LIPFORMER_SERVE_SESSION_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "data/scaler.h"
#include "models/factory.h"
#include "serve/checkpoint.h"
#include "serve/plan.h"

// Train-once / serve-many: a serving bundle is a checkpoint v2 file that
// additionally carries the model architecture (factory name + dims +
// ModelOptions as metadata) and the fitted scaler (reserved "__scaler__.*"
// tensors), so inference needs nothing but the file — no retraining, no
// out-of-band config. InferenceSession loads a bundle once and answers
// Predict calls in raw (unscaled) units.

namespace lipformer {
namespace serve {

// Reserved tensor names carrying the fitted scaler inside a bundle.
inline constexpr char kScalerMeanTensor[] = "__scaler__.mean";
inline constexpr char kScalerStdTensor[] = "__scaler__.std";

// Writes a self-contained serving bundle for a factory-reconstructible
// model. `model_name` must be a RegisteredModelNames() entry and
// `options` the hyperparameters the model was built with (the factory
// rebuilds the architecture from them at load time; LoadParameters'
// per-tensor name/shape verification then guarantees the metadata and
// the weights agree). A LiPFormer with an attached covariate encoder is
// rejected: its weak-label path needs the dual encoder, which bundles do
// not carry. An unfitted scaler is allowed (the session then serves in
// model units).
Status SaveModelBundle(const std::string& path, const std::string& model_name,
                       const ModelOptions& options, const Forecaster& model,
                       const StandardScaler& scaler);

// Parses and validates the architecture metadata of a serving bundle:
// bundle marker present, model name registered, dimensions positive, and
// every value strictly parsed (out-of-range integers and trailing junk
// are InvalidArgument, never silently clamped). `path` is used only for
// error messages. Shared by InferenceSession::Open and the bundle
// quantizer (serve/quantize.h).
Status ParseBundleConfig(const Checkpoint& ckpt, const std::string& path,
                         std::string* model_name, ForecasterDims* dims,
                         ModelOptions* options);

// Session knobs. `use_plan` controls the AOT plan path (serve/plan.h);
// the LIPF_NO_PLAN environment variable (any value) force-disables it
// regardless, and a model whose forward cannot be compiled (data-
// dependent ops) falls back to the module path automatically.
struct SessionOptions {
  bool use_plan = true;
};

// Plan-path observability for `lipformer_cli serve` stats and
// bench_serving (aggregated over the session's per-batch-size plan
// cache).
struct SessionPlanStats {
  bool enabled = false;          // plan path on for this session
  int64_t plans_compiled = 0;    // distinct batch sizes compiled
  std::string compile_error;     // first failure reason, if any
  int64_t plan_requests = 0;     // PredictBatch calls served by a plan
  int64_t module_requests = 0;   // PredictBatch calls on the module path
  PlanStats plan;                // batch-size-1 plan (or first compiled)
  std::vector<PlanOpTiming> timings;  // summed across plans; profiling only
};

// A loaded model + scaler ready for inference. Forwards run in eval mode
// under NoGradGuard on pooled buffers. Safe for concurrent callers: a
// mutex serializes module-path model access (modules keep lazily-built
// caches, so Forward is not reentrant), while the plan path executes an
// immutable compiled program against per-request arenas and runs fully
// concurrently; the dynamic batcher (serve/batcher.h) coalesces
// concurrent requests into one batched forward either way.
class InferenceSession {
 public:
  // Reads a bundle written by SaveModelBundle and reconstructs the model.
  // The default options precompile the batch-size-1 plan at Open.
  static Result<std::unique_ptr<InferenceSession>> Open(
      const std::string& path);
  static Result<std::unique_ptr<InferenceSession>> Open(
      const std::string& path, const SessionOptions& options);

  // history: [input_len, channels] raw units -> [pred_len, channels].
  Result<Tensor> Predict(const Tensor& history);

  // histories: [b, input_len, channels] -> [b, pred_len, channels].
  // Row i of the result is bitwise identical to Predict(histories[i]):
  // every kernel computes each output element with the same serial inner
  // loop regardless of batch size (see common/thread_pool.h).
  Result<Tensor> PredictBatch(const Tensor& histories);

  const std::string& model_name() const { return model_name_; }
  int64_t input_len() const { return model_->input_len(); }
  int64_t pred_len() const { return model_->pred_len(); }
  int64_t channels() const { return model_->channels(); }
  int64_t num_covariates() const { return num_covariates_; }
  // True when the bundle carried int8 weights (serve/quantize.h) and
  // Predict runs the quantized Linear path.
  bool quantized() const { return quantized_; }

  // Wall-clock seconds of the timed single-window forward run at Open
  // (after plan compilation, so it measures the path requests will take).
  // Seeds the batcher's admission-control cost EWMA; 0 if the probe was
  // skipped.
  double probe_latency_seconds() const { return probe_latency_seconds_; }

  // True when the AOT plan path is on for this session (options + env).
  bool plan_enabled() const { return use_plan_; }
  // The compiled plan for batch size b, compiling (and caching) it on
  // first use. Null when the plan path is disabled or compilation failed
  // for this model (the failure is cached too — no recompile storm).
  std::shared_ptr<const InferencePlan> PlanForBatch(int64_t b);
  // Aggregated plan counters; `timings` is populated while profiling.
  SessionPlanStats plan_stats() const;
  // Toggles per-op timing on every cached and future plan.
  void SetPlanProfiling(bool enabled);

 private:
  InferenceSession() = default;

  // One module forward at fixed shapes: scaled [b, input_len, channels]
  // in, scaled [b, pred_len, channels] out, under mu_ + NoGradGuard.
  Tensor ModuleForwardScaled(const Tensor& x_scaled);
  // Full module request path: raw histories in, raw predictions out
  // (scaler transform + forward + inverse transform). Shared by the
  // module serving path and plan compilation/tracing, so a compiled plan
  // covers the scaler arithmetic too.
  Tensor ModuleForwardRaw(const Tensor& histories);

  std::string model_name_;
  std::unique_ptr<Forecaster> model_;
  StandardScaler scaler_;
  int64_t num_covariates_ = 0;
  bool quantized_ = false;
  bool use_plan_ = true;
  double probe_latency_seconds_ = 0;
  std::mutex mu_;  // serializes module-path Forward on the shared model

  // Per-batch-size plan cache. A null entry records a failed compile so
  // the fallback is decided once. plan_mu_ never nests inside mu_
  // (compilation takes plan_mu_ then mu_ via ModuleForwardScaled).
  mutable std::mutex plan_mu_;
  std::map<int64_t, std::shared_ptr<const InferencePlan>> plans_;
  std::string plan_error_;
  bool plan_profiling_ = false;
  std::atomic<int64_t> plan_requests_{0};
  std::atomic<int64_t> module_requests_{0};
};

}  // namespace serve
}  // namespace lipformer

#endif  // LIPFORMER_SERVE_SESSION_H_
