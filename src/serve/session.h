#ifndef LIPFORMER_SERVE_SESSION_H_
#define LIPFORMER_SERVE_SESSION_H_

#include <memory>
#include <mutex>
#include <string>

#include "data/scaler.h"
#include "models/factory.h"
#include "serve/checkpoint.h"

// Train-once / serve-many: a serving bundle is a checkpoint v2 file that
// additionally carries the model architecture (factory name + dims +
// ModelOptions as metadata) and the fitted scaler (reserved "__scaler__.*"
// tensors), so inference needs nothing but the file — no retraining, no
// out-of-band config. InferenceSession loads a bundle once and answers
// Predict calls in raw (unscaled) units.

namespace lipformer {
namespace serve {

// Reserved tensor names carrying the fitted scaler inside a bundle.
inline constexpr char kScalerMeanTensor[] = "__scaler__.mean";
inline constexpr char kScalerStdTensor[] = "__scaler__.std";

// Writes a self-contained serving bundle for a factory-reconstructible
// model. `model_name` must be a RegisteredModelNames() entry and
// `options` the hyperparameters the model was built with (the factory
// rebuilds the architecture from them at load time; LoadParameters'
// per-tensor name/shape verification then guarantees the metadata and
// the weights agree). A LiPFormer with an attached covariate encoder is
// rejected: its weak-label path needs the dual encoder, which bundles do
// not carry. An unfitted scaler is allowed (the session then serves in
// model units).
Status SaveModelBundle(const std::string& path, const std::string& model_name,
                       const ModelOptions& options, const Forecaster& model,
                       const StandardScaler& scaler);

// Parses and validates the architecture metadata of a serving bundle:
// bundle marker present, model name registered, dimensions positive, and
// every value strictly parsed (out-of-range integers and trailing junk
// are InvalidArgument, never silently clamped). `path` is used only for
// error messages. Shared by InferenceSession::Open and the bundle
// quantizer (serve/quantize.h).
Status ParseBundleConfig(const Checkpoint& ckpt, const std::string& path,
                         std::string* model_name, ForecasterDims* dims,
                         ModelOptions* options);

// A loaded model + scaler ready for inference. Forwards run in eval mode
// under NoGradGuard on pooled buffers. Safe for concurrent callers: a
// mutex serializes model access (modules keep lazily-built caches, so
// Forward is not reentrant); the dynamic batcher (serve/batcher.h) is the
// intended way to get concurrency — it coalesces concurrent requests into
// one batched Forward instead of interleaving many small ones.
class InferenceSession {
 public:
  // Reads a bundle written by SaveModelBundle and reconstructs the model.
  static Result<std::unique_ptr<InferenceSession>> Open(
      const std::string& path);

  // history: [input_len, channels] raw units -> [pred_len, channels].
  Result<Tensor> Predict(const Tensor& history);

  // histories: [b, input_len, channels] -> [b, pred_len, channels].
  // Row i of the result is bitwise identical to Predict(histories[i]):
  // every kernel computes each output element with the same serial inner
  // loop regardless of batch size (see common/thread_pool.h).
  Result<Tensor> PredictBatch(const Tensor& histories);

  const std::string& model_name() const { return model_name_; }
  int64_t input_len() const { return model_->input_len(); }
  int64_t pred_len() const { return model_->pred_len(); }
  int64_t channels() const { return model_->channels(); }
  int64_t num_covariates() const { return num_covariates_; }
  // True when the bundle carried int8 weights (serve/quantize.h) and
  // Predict runs the quantized Linear path.
  bool quantized() const { return quantized_; }

 private:
  InferenceSession() = default;

  std::string model_name_;
  std::unique_ptr<Forecaster> model_;
  StandardScaler scaler_;
  int64_t num_covariates_ = 0;
  bool quantized_ = false;
  std::mutex mu_;  // serializes Forward on the shared model
};

}  // namespace serve
}  // namespace lipformer

#endif  // LIPFORMER_SERVE_SESSION_H_
