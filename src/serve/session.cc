#include "serve/session.h"

#include <chrono>
#include <cstring>
#include <limits>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "autograd/variable.h"
#include "common/fault_injection.h"
#include "common/parse.h"
#include "core/lipformer.h"
#include "data/time_features.h"
#include "data/window_dataset.h"
#include "nn/linear.h"
#include "serve/quantize.h"

namespace lipformer {
namespace serve {

namespace {

// Metadata keys of a serving bundle.
constexpr char kMetaBundle[] = "bundle";
constexpr char kMetaModel[] = "model";
constexpr char kMetaInputLen[] = "input_len";
constexpr char kMetaPredLen[] = "pred_len";
constexpr char kMetaChannels[] = "channels";
constexpr char kMetaPatchLen[] = "patch_len";
constexpr char kMetaHiddenDim[] = "hidden_dim";
constexpr char kMetaNumHeads[] = "num_heads";
constexpr char kMetaNumLayers[] = "num_layers";
constexpr char kMetaDropout[] = "dropout";
constexpr char kMetaSeed[] = "seed";
constexpr char kMetaNumCovariates[] = "num_covariates";

inline int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

Status ParseMetaInt(const Checkpoint& ckpt, const std::string& key,
                    int64_t* out) {
  const std::string value = ckpt.Meta(key, "");
  if (value.empty()) {
    return Status::InvalidArgument("bundle metadata missing '" + key + "'");
  }
  // lipformer::ParseInt64 is strict: a value that overflows int64 (strtoll
  // would silently clamp it to LLONG_MAX) or carries trailing junk is an
  // error, not a garbage dimension.
  if (!lipformer::ParseInt64(value, out)) {
    return Status::InvalidArgument("bundle metadata '" + key +
                                   "' is not an integer: " + value);
  }
  return Status::OK();
}

Status ParseMetaFloat(const Checkpoint& ckpt, const std::string& key,
                      const std::string& def, float* out) {
  const std::string value = ckpt.Meta(key, def);
  if (!lipformer::ParseFloat(value, out)) {
    return Status::InvalidArgument("bundle metadata '" + key +
                                   "' is not a number: " + value);
  }
  return Status::OK();
}

// Loads the parameters of an int8 bundle (serve/quantize.h): plain fp32
// tensors fill their parameters directly, and each Linear weight is
// reconstructed from its "__quant__.<name>.{w8,scale}" pair — attached
// prepacked for the int8 forward and dequantized into the fp32 parameter.
Status LoadQuantizedParameters(Forecaster* model, const Checkpoint& ckpt,
                               const std::string& path) {
  std::map<std::string, Linear*> linear_weights;
  for (auto& [prefix, module] : model->NamedModules()) {
    if (auto* lin = dynamic_cast<Linear*>(module)) {
      linear_weights.emplace(prefix.empty() ? "weight" : prefix + ".weight",
                             lin);
    }
  }

  std::vector<std::string> names = model->ParameterNames();
  std::vector<Variable> params = model->Parameters();
  size_t quantized = 0;
  for (size_t i = 0; i < names.size(); ++i) {
    const std::string& name = names[i];
    auto lin_it = linear_weights.find(name);
    const CheckpointTensor* w8t =
        lin_it != linear_weights.end()
            ? ckpt.Find(QuantWeightTensorName(name))
            : nullptr;
    if (w8t != nullptr) {
      Linear* lin = lin_it->second;
      const CheckpointTensor* scale = ckpt.Find(QuantScaleTensorName(name));
      if (scale == nullptr) {
        return Status::InvalidArgument(
            "quantized bundle " + path + " has " + QuantWeightTensorName(name) +
            " but no matching scale tensor");
      }
      const int64_t numel = lin->in_features() * lin->out_features();
      if (w8t->data.numel() != CeilDiv(numel, 4)) {
        return Status::InvalidArgument(
            "quantized weight for '" + name + "' in " + path + " has " +
            std::to_string(w8t->data.numel()) + " packed floats, expected " +
            std::to_string(CeilDiv(numel, 4)));
      }
      if (scale->data.numel() != lin->out_features()) {
        return Status::InvalidArgument(
            "quantized scale for '" + name + "' in " + path + " has " +
            std::to_string(scale->data.numel()) + " entries, expected " +
            std::to_string(lin->out_features()));
      }
      std::vector<int8_t> w8(static_cast<size_t>(numel));
      std::memcpy(w8.data(), w8t->data.data(), w8.size());
      LIPF_RETURN_IF_ERROR(lin->AttachQuantizedWeights(w8, scale->data));
      ++quantized;
      continue;
    }
    const CheckpointTensor* entry = ckpt.Find(name);
    if (entry == nullptr) {
      return Status::InvalidArgument("quantized bundle " + path +
                                     " has no tensor named '" + name + "'");
    }
    if (!SameShape(entry->data.shape(), params[i].shape())) {
      return Status::InvalidArgument(
          "shape mismatch for parameter '" + name + "' in " + path +
          ": checkpoint has " + ShapeToString(entry->data.shape()) +
          ", module expects " + ShapeToString(params[i].shape()));
    }
    const float* src = entry->data.data();
    std::copy(src, src + params[i].numel(),
              params[i].mutable_value().data());
  }
  if (quantized == 0) {
    return Status::InvalidArgument(
        "bundle " + path +
        " claims quantized=int8 but carries no __quant__ tensors");
  }
  // Every non-reserved tensor must have landed in a parameter; a surplus
  // means the file belongs to a different architecture.
  size_t plain = 0;
  for (const CheckpointTensor& t : ckpt.tensors) {
    if (t.name.rfind(kReservedTensorPrefix, 0) != 0) ++plain;
  }
  if (plain != names.size() - quantized) {
    return Status::InvalidArgument(
        "parameter count mismatch in " + path + ": checkpoint has " +
        std::to_string(plain) + " fp32 tensors, module expects " +
        std::to_string(names.size() - quantized));
  }
  return Status::OK();
}

}  // namespace

Status SaveModelBundle(const std::string& path, const std::string& model_name,
                       const ModelOptions& options, const Forecaster& model,
                       const StandardScaler& scaler) {
  bool known = false;
  for (const std::string& name : RegisteredModelNames()) {
    if (name == model_name) known = true;
  }
  if (!known) {
    return Status::InvalidArgument("cannot bundle unknown model '" +
                                   model_name + "'");
  }
  if (const auto* lip = dynamic_cast<const LiPFormer*>(&model)) {
    if (lip->has_covariate_encoder()) {
      return Status::InvalidArgument(
          "serving bundles do not support a LiPFormer with an attached "
          "covariate encoder (the weak-label path needs the dual encoder); "
          "save the backbone-only model instead");
    }
  }

  Checkpoint ckpt;
  ckpt.metadata[kMetaBundle] = "1";
  ckpt.metadata[kMetaModel] = model_name;
  ckpt.metadata[kMetaInputLen] = std::to_string(model.input_len());
  ckpt.metadata[kMetaPredLen] = std::to_string(model.pred_len());
  ckpt.metadata[kMetaChannels] = std::to_string(model.channels());
  ckpt.metadata[kMetaPatchLen] = std::to_string(options.patch_len);
  ckpt.metadata[kMetaHiddenDim] = std::to_string(options.hidden_dim);
  ckpt.metadata[kMetaNumHeads] = std::to_string(options.num_heads);
  ckpt.metadata[kMetaNumLayers] = std::to_string(options.num_layers);
  ckpt.metadata[kMetaDropout] = std::to_string(options.dropout);
  ckpt.metadata[kMetaSeed] = std::to_string(options.seed);
  ckpt.metadata[kMetaNumCovariates] = std::to_string(options.num_covariates);

  if (scaler.fitted()) {
    ckpt.tensors.push_back({kScalerMeanTensor, scaler.mean().Clone()});
    ckpt.tensors.push_back({kScalerStdTensor, scaler.std().Clone()});
  }
  std::vector<std::string> names = model.ParameterNames();
  std::vector<Variable> params = model.Parameters();
  for (size_t i = 0; i < params.size(); ++i) {
    ckpt.tensors.push_back({names[i], params[i].value().Clone()});
  }
  return WriteCheckpoint(path, ckpt);
}

Status ParseBundleConfig(const Checkpoint& ckpt, const std::string& path,
                         std::string* model_name, ForecasterDims* dims,
                         ModelOptions* options) {
  if (ckpt.Meta(kMetaBundle, "") != "1") {
    return Status::InvalidArgument(
        path + " is a bare parameter checkpoint, not a serving bundle; "
        "re-save it with `lipformer_cli train --save=...` (which writes "
        "model config and scaler alongside the weights)");
  }
  *model_name = ckpt.Meta(kMetaModel, "");
  int64_t tmp = 0;
  LIPF_RETURN_IF_ERROR(ParseMetaInt(ckpt, kMetaInputLen, &dims->input_len));
  LIPF_RETURN_IF_ERROR(ParseMetaInt(ckpt, kMetaPredLen, &dims->pred_len));
  LIPF_RETURN_IF_ERROR(ParseMetaInt(ckpt, kMetaChannels, &dims->channels));
  LIPF_RETURN_IF_ERROR(
      ParseMetaInt(ckpt, kMetaPatchLen, &options->patch_len));
  LIPF_RETURN_IF_ERROR(
      ParseMetaInt(ckpt, kMetaHiddenDim, &options->hidden_dim));
  LIPF_RETURN_IF_ERROR(
      ParseMetaInt(ckpt, kMetaNumHeads, &options->num_heads));
  LIPF_RETURN_IF_ERROR(
      ParseMetaInt(ckpt, kMetaNumLayers, &options->num_layers));
  LIPF_RETURN_IF_ERROR(ParseMetaInt(ckpt, kMetaSeed, &tmp));
  options->seed = static_cast<uint64_t>(tmp);
  LIPF_RETURN_IF_ERROR(
      ParseMetaInt(ckpt, kMetaNumCovariates, &options->num_covariates));
  LIPF_RETURN_IF_ERROR(
      ParseMetaFloat(ckpt, kMetaDropout, "0.1", &options->dropout));

  bool known = false;
  for (const std::string& name : RegisteredModelNames()) {
    if (name == *model_name) known = true;
  }
  if (!known) {
    return Status::InvalidArgument("bundle " + path +
                                   " names unknown model '" + *model_name +
                                   "'");
  }
  if (dims->input_len <= 0 || dims->pred_len <= 0 || dims->channels <= 0) {
    return Status::InvalidArgument("bundle " + path +
                                   " has non-positive dimensions");
  }
  return Status::OK();
}

Result<std::unique_ptr<InferenceSession>> InferenceSession::Open(
    const std::string& path) {
  return Open(path, SessionOptions());
}

Result<std::unique_ptr<InferenceSession>> InferenceSession::Open(
    const std::string& path, const SessionOptions& session_options) {
  if (fault::ShouldFailOpen()) {
    return Status::IOError("injected fault: InferenceSession::Open failed "
                           "for " + path);
  }
  Result<Checkpoint> loaded = ReadCheckpoint(path);
  if (!loaded.ok()) return loaded.status();
  const Checkpoint& ckpt = loaded.value();

  std::string model_name;
  ForecasterDims dims;
  ModelOptions options;
  LIPF_RETURN_IF_ERROR(
      ParseBundleConfig(ckpt, path, &model_name, &dims, &options));
  const std::string quant_scheme = ckpt.Meta(kMetaQuantized, "");
  if (!quant_scheme.empty() && quant_scheme != kQuantSchemeInt8) {
    return Status::InvalidArgument("bundle " + path +
                                   " uses unsupported quantization scheme '" +
                                   quant_scheme + "'");
  }

  auto session = std::unique_ptr<InferenceSession>(new InferenceSession());
  session->model_name_ = model_name;
  session->num_covariates_ = options.num_covariates;
  session->quantized_ = !quant_scheme.empty();
  session->model_ = CreateModel(model_name, dims, options);
  session->model_->SetTraining(false);
  session->model_->SetRequiresGrad(false);
  // The per-tensor name/shape verification inside the loaders is what
  // makes the metadata trustworthy: a bundle whose weights belong to a
  // different architecture fails here, naming the offending parameter.
  if (session->quantized_) {
    LIPF_RETURN_IF_ERROR(
        LoadQuantizedParameters(session->model_.get(), ckpt, path));
  } else {
    LIPF_RETURN_IF_ERROR(session->model_->LoadParameters(path));
  }

  const CheckpointTensor* mean = ckpt.Find(kScalerMeanTensor);
  const CheckpointTensor* std_t = ckpt.Find(kScalerStdTensor);
  if ((mean == nullptr) != (std_t == nullptr)) {
    return Status::InvalidArgument("bundle " + path +
                                   " has half a scaler (mean xor std)");
  }
  if (mean != nullptr) {
    if (mean->data.dim() != 1 || std_t->data.dim() != 1 ||
        mean->data.size(0) != dims.channels ||
        std_t->data.size(0) != dims.channels) {
      return Status::InvalidArgument(
          "bundle " + path + " scaler shape does not match channels=" +
          std::to_string(dims.channels));
    }
    for (int64_t j = 0; j < std_t->data.size(0); ++j) {
      if (!(std_t->data.data()[j] > 0.0f)) {
        return Status::InvalidArgument("bundle " + path +
                                       " scaler has non-positive std");
      }
    }
    session->scaler_.Restore(mean->data.Clone(), std_t->data.Clone());
  }

  // LIPF_NO_PLAN is the operational kill switch mirroring the CLI's
  // --no-plan; a set (any value) variable wins over SessionOptions.
  session->use_plan_ =
      session_options.use_plan && std::getenv("LIPF_NO_PLAN") == nullptr;
  if (session->use_plan_) {
    // Precompile the dominant serving shape so the first request does not
    // pay the (few-forwards) compile cost. Larger batch sizes compile
    // lazily on first sight. A failure here just records the fallback.
    session->PlanForBatch(1);
  }
  {
    // Timed validation probe: one single-window forward on the path
    // requests will actually take (plan when compiled, module
    // otherwise). The measurement seeds the batcher's admission-control
    // cost EWMA so shedding works from the very first request instead of
    // waiting for the estimate to warm up.
    Rng rng(0x517cc1b727220a95ull);
    Tensor sample = Tensor::Randn(
        {1, session->input_len(), session->channels()}, rng);
    const auto probe_start = std::chrono::steady_clock::now();
    Result<Tensor> probe = session->PredictBatch(sample);
    if (!probe.ok()) return probe.status();
    session->probe_latency_seconds_ =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      probe_start)
            .count();
    // The probe is internal: plan_requests/module_requests count requests
    // served to callers, so the warm-up forward must not appear there.
    session->plan_requests_.store(0, std::memory_order_relaxed);
    session->module_requests_.store(0, std::memory_order_relaxed);
  }
  return session;
}

Tensor InferenceSession::ModuleForwardScaled(const Tensor& x_scaled) {
  const int64_t b = x_scaled.size(0);
  Batch batch;
  batch.size = b;
  batch.x = x_scaled;
  // Serving requests carry raw values only; implicit time features and
  // future covariates are zero (bundles record num_covariates so models
  // that read batch.y_cov_num still see the channel count they expect).
  batch.x_time = Tensor(Shape{b, input_len(), kNumTimeFeatures});
  batch.y_time = Tensor(Shape{b, pred_len(), kNumTimeFeatures});
  batch.y_cov_num = Tensor(Shape{b, pred_len(), num_covariates_});
  batch.y_cov_cat = Tensor(Shape{b, pred_len(), 0});
  std::lock_guard<std::mutex> lock(mu_);
  NoGradGuard no_grad;
  return model_->Forward(batch).value();
}

Tensor InferenceSession::ModuleForwardRaw(const Tensor& histories) {
  const Tensor x =
      scaler_.fitted() ? scaler_.Transform(histories) : histories;
  Tensor scaled_pred = ModuleForwardScaled(x);
  return scaler_.fitted() ? scaler_.InverseTransform(scaled_pred)
                          : scaled_pred;
}

std::shared_ptr<const InferencePlan> InferenceSession::PlanForBatch(
    int64_t b) {
  if (!use_plan_) return nullptr;
  std::lock_guard<std::mutex> lock(plan_mu_);
  auto it = plans_.find(b);
  if (it != plans_.end()) return it->second;

  // Compile under plan_mu_ (rare, a handful of forwards); concurrent
  // requests for other batch sizes briefly queue here, never on the hot
  // path. Trace and validation inputs only need distinct values — any
  // fixed-seed noise exercises the graph.
  Rng rng(0x9e3779b97f4a7c15ull ^ static_cast<uint64_t>(b));
  const Shape in_shape{b, input_len(), channels()};
  Tensor sample = Tensor::Randn(in_shape, rng);
  Tensor check = Tensor::Randn(in_shape, rng);
  Result<std::shared_ptr<const InferencePlan>> compiled =
      InferencePlan::Compile(
          [this](const Tensor& x) { return ModuleForwardRaw(x); },
          sample, check);
  std::shared_ptr<const InferencePlan> plan;
  if (compiled.ok()) {
    plan = compiled.value();
    plan->set_profiling(plan_profiling_);
  } else if (plan_error_.empty()) {
    plan_error_ = compiled.status().message();
  }
  plans_.emplace(b, plan);  // null entry caches the failure
  return plan;
}

SessionPlanStats InferenceSession::plan_stats() const {
  SessionPlanStats s;
  s.enabled = use_plan_;
  s.plan_requests = plan_requests_.load(std::memory_order_relaxed);
  s.module_requests = module_requests_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(plan_mu_);
  s.compile_error = plan_error_;
  std::map<std::string, size_t> by_name;
  for (const auto& [b, plan] : plans_) {
    if (plan == nullptr) continue;
    if (s.plans_compiled == 0 || b == 1) s.plan = plan->stats();
    s.plans_compiled += 1;
    for (const PlanOpTiming& t : plan->OpTimings()) {
      auto [it, fresh] = by_name.emplace(t.name, s.timings.size());
      if (fresh) {
        s.timings.push_back(t);
      } else {
        s.timings[it->second].calls += t.calls;
        s.timings[it->second].total_ns += t.total_ns;
      }
    }
  }
  return s;
}

void InferenceSession::SetPlanProfiling(bool enabled) {
  std::lock_guard<std::mutex> lock(plan_mu_);
  plan_profiling_ = enabled;
  for (const auto& [b, plan] : plans_) {
    if (plan != nullptr) plan->set_profiling(enabled);
  }
}

Result<Tensor> InferenceSession::Predict(const Tensor& history) {
  if (history.dim() != 2) {
    return Status::InvalidArgument("Predict expects [input_len, channels], "
                                   "got " + ShapeToString(history.shape()));
  }
  Result<Tensor> batched =
      PredictBatch(history.Reshape({1, history.size(0), history.size(1)}));
  if (!batched.ok()) return batched.status();
  return batched.value().Reshape({pred_len(), channels()});
}

Result<Tensor> InferenceSession::PredictBatch(const Tensor& histories) {
  if (histories.dim() != 3 || histories.size(1) != input_len() ||
      histories.size(2) != channels()) {
    return Status::InvalidArgument(
        "PredictBatch expects [b, " + std::to_string(input_len()) + ", " +
        std::to_string(channels()) + "], got " +
        ShapeToString(histories.shape()));
  }
  const int64_t b = histories.size(0);
  if (b == 0) {
    return Status::InvalidArgument("PredictBatch got an empty batch");
  }

  // Chaos hooks (common/fault_injection.h): slow_infer stalls this
  // forward, poison_output corrupts its result — both no-ops unless a
  // test armed them.
  const fault::InferFault injected = fault::OnInferCall();
  if (injected.delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(injected.delay_ms));
  }

  // Plan path when available: the compiled program is immutable, so this
  // runs without the module mutex, bitwise identical to the module
  // request path — scaler arithmetic included — as validated at compile
  // time. Null plan (disabled or uncompilable model) falls back to the
  // module.
  Tensor pred;
  if (std::shared_ptr<const InferencePlan> plan = PlanForBatch(b)) {
    pred = plan->Execute(histories);
    plan_requests_.fetch_add(1, std::memory_order_relaxed);
  } else {
    pred = ModuleForwardRaw(histories);
    module_requests_.fetch_add(1, std::memory_order_relaxed);
  }
  if (injected.poison_output) {
    float* data = pred.data();
    const int64_t n = pred.numel();
    for (int64_t i = 0; i < n; ++i) {
      data[i] = std::numeric_limits<float>::quiet_NaN();
    }
  }
  return pred;
}

}  // namespace serve
}  // namespace lipformer
