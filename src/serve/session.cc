#include "serve/session.h"

#include <cstdlib>
#include <utility>

#include "autograd/variable.h"
#include "core/lipformer.h"
#include "data/time_features.h"
#include "data/window_dataset.h"

namespace lipformer {
namespace serve {

namespace {

// Metadata keys of a serving bundle.
constexpr char kMetaBundle[] = "bundle";
constexpr char kMetaModel[] = "model";
constexpr char kMetaInputLen[] = "input_len";
constexpr char kMetaPredLen[] = "pred_len";
constexpr char kMetaChannels[] = "channels";
constexpr char kMetaPatchLen[] = "patch_len";
constexpr char kMetaHiddenDim[] = "hidden_dim";
constexpr char kMetaNumHeads[] = "num_heads";
constexpr char kMetaNumLayers[] = "num_layers";
constexpr char kMetaDropout[] = "dropout";
constexpr char kMetaSeed[] = "seed";
constexpr char kMetaNumCovariates[] = "num_covariates";

Status ParseMetaInt(const Checkpoint& ckpt, const std::string& key,
                    int64_t* out) {
  const std::string value = ckpt.Meta(key, "");
  if (value.empty()) {
    return Status::InvalidArgument("bundle metadata missing '" + key + "'");
  }
  char* end = nullptr;
  const long long parsed = std::strtoll(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    return Status::InvalidArgument("bundle metadata '" + key +
                                   "' is not an integer: " + value);
  }
  *out = parsed;
  return Status::OK();
}

}  // namespace

Status SaveModelBundle(const std::string& path, const std::string& model_name,
                       const ModelOptions& options, const Forecaster& model,
                       const StandardScaler& scaler) {
  bool known = false;
  for (const std::string& name : RegisteredModelNames()) {
    if (name == model_name) known = true;
  }
  if (!known) {
    return Status::InvalidArgument("cannot bundle unknown model '" +
                                   model_name + "'");
  }
  if (const auto* lip = dynamic_cast<const LiPFormer*>(&model)) {
    if (lip->has_covariate_encoder()) {
      return Status::InvalidArgument(
          "serving bundles do not support a LiPFormer with an attached "
          "covariate encoder (the weak-label path needs the dual encoder); "
          "save the backbone-only model instead");
    }
  }

  Checkpoint ckpt;
  ckpt.metadata[kMetaBundle] = "1";
  ckpt.metadata[kMetaModel] = model_name;
  ckpt.metadata[kMetaInputLen] = std::to_string(model.input_len());
  ckpt.metadata[kMetaPredLen] = std::to_string(model.pred_len());
  ckpt.metadata[kMetaChannels] = std::to_string(model.channels());
  ckpt.metadata[kMetaPatchLen] = std::to_string(options.patch_len);
  ckpt.metadata[kMetaHiddenDim] = std::to_string(options.hidden_dim);
  ckpt.metadata[kMetaNumHeads] = std::to_string(options.num_heads);
  ckpt.metadata[kMetaNumLayers] = std::to_string(options.num_layers);
  ckpt.metadata[kMetaDropout] = std::to_string(options.dropout);
  ckpt.metadata[kMetaSeed] = std::to_string(options.seed);
  ckpt.metadata[kMetaNumCovariates] = std::to_string(options.num_covariates);

  if (scaler.fitted()) {
    ckpt.tensors.push_back({kScalerMeanTensor, scaler.mean().Clone()});
    ckpt.tensors.push_back({kScalerStdTensor, scaler.std().Clone()});
  }
  std::vector<std::string> names = model.ParameterNames();
  std::vector<Variable> params = model.Parameters();
  for (size_t i = 0; i < params.size(); ++i) {
    ckpt.tensors.push_back({names[i], params[i].value().Clone()});
  }
  return WriteCheckpoint(path, ckpt);
}

Result<std::unique_ptr<InferenceSession>> InferenceSession::Open(
    const std::string& path) {
  Result<Checkpoint> loaded = ReadCheckpoint(path);
  if (!loaded.ok()) return loaded.status();
  const Checkpoint& ckpt = loaded.value();
  if (ckpt.Meta(kMetaBundle, "") != "1") {
    return Status::InvalidArgument(
        path + " is a bare parameter checkpoint, not a serving bundle; "
        "re-save it with `lipformer_cli train --save=...` (which writes "
        "model config and scaler alongside the weights)");
  }

  const std::string model_name = ckpt.Meta(kMetaModel, "");
  ForecasterDims dims;
  ModelOptions options;
  int64_t tmp = 0;
  LIPF_RETURN_IF_ERROR(ParseMetaInt(ckpt, kMetaInputLen, &dims.input_len));
  LIPF_RETURN_IF_ERROR(ParseMetaInt(ckpt, kMetaPredLen, &dims.pred_len));
  LIPF_RETURN_IF_ERROR(ParseMetaInt(ckpt, kMetaChannels, &dims.channels));
  LIPF_RETURN_IF_ERROR(ParseMetaInt(ckpt, kMetaPatchLen, &options.patch_len));
  LIPF_RETURN_IF_ERROR(
      ParseMetaInt(ckpt, kMetaHiddenDim, &options.hidden_dim));
  LIPF_RETURN_IF_ERROR(ParseMetaInt(ckpt, kMetaNumHeads, &options.num_heads));
  LIPF_RETURN_IF_ERROR(
      ParseMetaInt(ckpt, kMetaNumLayers, &options.num_layers));
  LIPF_RETURN_IF_ERROR(ParseMetaInt(ckpt, kMetaSeed, &tmp));
  options.seed = static_cast<uint64_t>(tmp);
  LIPF_RETURN_IF_ERROR(
      ParseMetaInt(ckpt, kMetaNumCovariates, &options.num_covariates));
  options.dropout =
      std::strtof(ckpt.Meta(kMetaDropout, "0.1").c_str(), nullptr);

  bool known = false;
  for (const std::string& name : RegisteredModelNames()) {
    if (name == model_name) known = true;
  }
  if (!known) {
    return Status::InvalidArgument("bundle " + path +
                                   " names unknown model '" + model_name +
                                   "'");
  }
  if (dims.input_len <= 0 || dims.pred_len <= 0 || dims.channels <= 0) {
    return Status::InvalidArgument("bundle " + path +
                                   " has non-positive dimensions");
  }

  auto session = std::unique_ptr<InferenceSession>(new InferenceSession());
  session->model_name_ = model_name;
  session->num_covariates_ = options.num_covariates;
  session->model_ = CreateModel(model_name, dims, options);
  session->model_->SetTraining(false);
  session->model_->SetRequiresGrad(false);
  // The per-tensor name/shape verification inside LoadParameters is what
  // makes the metadata trustworthy: a bundle whose weights belong to a
  // different architecture fails here, naming the offending parameter.
  LIPF_RETURN_IF_ERROR(session->model_->LoadParameters(path));

  const CheckpointTensor* mean = ckpt.Find(kScalerMeanTensor);
  const CheckpointTensor* std_t = ckpt.Find(kScalerStdTensor);
  if ((mean == nullptr) != (std_t == nullptr)) {
    return Status::InvalidArgument("bundle " + path +
                                   " has half a scaler (mean xor std)");
  }
  if (mean != nullptr) {
    if (mean->data.dim() != 1 || std_t->data.dim() != 1 ||
        mean->data.size(0) != dims.channels ||
        std_t->data.size(0) != dims.channels) {
      return Status::InvalidArgument(
          "bundle " + path + " scaler shape does not match channels=" +
          std::to_string(dims.channels));
    }
    for (int64_t j = 0; j < std_t->data.size(0); ++j) {
      if (!(std_t->data.data()[j] > 0.0f)) {
        return Status::InvalidArgument("bundle " + path +
                                       " scaler has non-positive std");
      }
    }
    session->scaler_.Restore(mean->data.Clone(), std_t->data.Clone());
  }
  return session;
}

Result<Tensor> InferenceSession::Predict(const Tensor& history) {
  if (history.dim() != 2) {
    return Status::InvalidArgument("Predict expects [input_len, channels], "
                                   "got " + ShapeToString(history.shape()));
  }
  Result<Tensor> batched =
      PredictBatch(history.Reshape({1, history.size(0), history.size(1)}));
  if (!batched.ok()) return batched.status();
  return batched.value().Reshape({pred_len(), channels()});
}

Result<Tensor> InferenceSession::PredictBatch(const Tensor& histories) {
  if (histories.dim() != 3 || histories.size(1) != input_len() ||
      histories.size(2) != channels()) {
    return Status::InvalidArgument(
        "PredictBatch expects [b, " + std::to_string(input_len()) + ", " +
        std::to_string(channels()) + "], got " +
        ShapeToString(histories.shape()));
  }
  const int64_t b = histories.size(0);
  if (b == 0) {
    return Status::InvalidArgument("PredictBatch got an empty batch");
  }

  Batch batch;
  batch.size = b;
  batch.x = scaler_.fitted() ? scaler_.Transform(histories) : histories;
  // Serving requests carry raw values only; implicit time features and
  // future covariates are zero (bundles record num_covariates so models
  // that read batch.y_cov_num still see the channel count they expect).
  batch.x_time = Tensor(Shape{b, input_len(), kNumTimeFeatures});
  batch.y_time = Tensor(Shape{b, pred_len(), kNumTimeFeatures});
  batch.y_cov_num = Tensor(Shape{b, pred_len(), num_covariates_});
  batch.y_cov_cat = Tensor(Shape{b, pred_len(), 0});

  Tensor scaled_pred;
  {
    std::lock_guard<std::mutex> lock(mu_);
    NoGradGuard no_grad;
    scaled_pred = model_->Forward(batch).value();
  }
  return scaler_.fitted() ? scaler_.InverseTransform(scaled_pred)
                          : scaled_pred;
}

}  // namespace serve
}  // namespace lipformer
