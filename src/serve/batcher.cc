#include "serve/batcher.h"

#include <cstring>
#include <utility>

namespace lipformer {
namespace serve {

namespace {
using Clock = std::chrono::steady_clock;

double Seconds(Clock::duration d) {
  return std::chrono::duration<double>(d).count();
}
}  // namespace

Batcher::Batcher(InferenceSession* session, BatcherOptions options)
    : session_(session), options_(options) {
  LIPF_CHECK(session != nullptr);
  LIPF_CHECK_GT(options_.max_batch_size, 0);
  LIPF_CHECK_GT(options_.queue_capacity, 0);
  batch_size_histogram_.assign(
      static_cast<size_t>(options_.max_batch_size), 0);
  worker_ = std::thread([this] { WorkerLoop(); });
}

Batcher::~Batcher() { Shutdown(); }

std::future<Result<Tensor>> Batcher::Submit(
    Tensor history, std::chrono::microseconds deadline, SubmitMode mode) {
  std::promise<Result<Tensor>> rejected;
  std::future<Result<Tensor>> rejected_future = rejected.get_future();
  if (history.dim() != 2 || history.size(0) != session_->input_len() ||
      history.size(1) != session_->channels()) {
    rejected.set_value(Status::InvalidArgument(
        "Submit expects [" + std::to_string(session_->input_len()) + ", " +
        std::to_string(session_->channels()) + "], got " +
        ShapeToString(history.shape())));
    return rejected_future;
  }

  Request request;
  request.history = std::move(history);
  request.submitted_at = Clock::now();
  if (deadline.count() > 0) {
    request.has_deadline = true;
    request.deadline = request.submitted_at + deadline;
  }
  std::future<Result<Tensor>> future = request.promise.get_future();

  std::vector<Request> swept;
  bool accepted = false;
  bool shut_down = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      if (shutdown_) {
        shut_down = true;
        break;
      }
      if (static_cast<int64_t>(queue_.size()) >= options_.queue_capacity) {
        // A queue pinned at capacity by already-expired requests must not
        // bounce fresh work: those entries can never occupy batch slots
        // (RunOneBatch discards them), so evict them here instead of
        // waiting for the worker to reach them.
        std::vector<Request> stale = SweepExpiredLocked(Clock::now());
        for (Request& request_stale : stale) {
          swept.push_back(std::move(request_stale));
        }
      }
      if (static_cast<int64_t>(queue_.size()) < options_.queue_capacity) {
        ++submitted_;
        queue_.push_back(std::move(request));
        accepted = true;
        break;
      }
      if (mode == SubmitMode::kReject) {
        ++rejected_full_;
        break;
      }
      // kBlock: flow control. Wait for the worker to pop requests (or for
      // shutdown); re-evaluate capacity from the top on every wake-up.
      space_cv_.wait(lock);
    }
  }
  // Fulfill outside mu_ so a caller blocked on one of these futures never
  // contends with the worker for the queue lock on wake-up.
  for (Request& stale : swept) {
    stale.promise.set_value(Status::DeadlineExceeded(
        "request expired before its batch was executed"));
  }
  if (!swept.empty()) {
    // The sweep freed slots; one was (maybe) consumed above, any others
    // can admit blocked submitters.
    space_cv_.notify_all();
  }
  if (!accepted) {
    if (shut_down) {
      rejected.set_value(Status::Unavailable("batcher is shut down"));
    } else {
      rejected.set_value(Status::Unavailable(
          "serving queue full (" + std::to_string(options_.queue_capacity) +
          " pending requests); retry later"));
    }
    return rejected_future;
  }
  cv_.notify_all();
  return future;
}

int64_t Batcher::LiveQueueCountLocked(Clock::time_point now) const {
  int64_t live = 0;
  for (const Request& request : queue_) {
    if (!request.has_deadline || now < request.deadline) ++live;
  }
  return live;
}

std::vector<Batcher::Request> Batcher::SweepExpiredLocked(
    Clock::time_point now) {
  std::vector<Request> swept;
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->has_deadline && now >= it->deadline) {
      swept.push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  expired_ += static_cast<int64_t>(swept.size());
  return swept;
}

void Batcher::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  space_cv_.notify_all();  // unblock kBlock submitters with Unavailable
  // Separate mutex so concurrent Shutdown calls serialize on the join
  // without holding mu_ (the worker needs it to drain).
  std::lock_guard<std::mutex> join_lock(join_mu_);
  if (worker_.joinable()) worker_.join();
}

void Batcher::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (shutdown_) return;  // drained
      continue;
    }
    if (!shutdown_) {
      // Coalesce: give concurrent submitters max_delay to fill the batch.
      // On shutdown the remaining queue is executed immediately.
      const auto wait_until = Clock::now() + options_.max_delay;
      cv_.wait_until(lock, wait_until, [this] {
        // Count only live requests: expired entries are discarded by
        // RunOneBatch, so treating them as occupants would cut the
        // coalescing wait short and fire an under-filled batch.
        return shutdown_ ||
               LiveQueueCountLocked(Clock::now()) >= options_.max_batch_size;
      });
    }
    RunOneBatch(&lock);
  }
}

bool Batcher::RunOneBatch(std::unique_lock<std::mutex>* lock) {
  const auto now = Clock::now();
  std::vector<Request> batch;
  std::vector<Request> expired;
  while (!queue_.empty() &&
         static_cast<int64_t>(batch.size()) < options_.max_batch_size) {
    Request request = std::move(queue_.front());
    queue_.pop_front();
    if (request.has_deadline && now >= request.deadline) {
      ++expired_;
      expired.push_back(std::move(request));
    } else {
      batch.push_back(std::move(request));
    }
  }
  if (!batch.empty()) {
    ++batches_;
    ++batch_size_histogram_[batch.size() - 1];
  }
  lock->unlock();

  // Every popped request (executed or expired) freed a queue slot.
  if (!batch.empty() || !expired.empty()) space_cv_.notify_all();

  for (Request& request : expired) {
    request.promise.set_value(Status::DeadlineExceeded(
        "request expired before its batch was executed"));
  }

  if (batch.empty()) {
    lock->lock();
    return false;
  }

  const int64_t k = static_cast<int64_t>(batch.size());
  const int64_t t = session_->input_len();
  const int64_t c = session_->channels();
  Tensor histories = Tensor::Empty({k, t, c});
  for (int64_t i = 0; i < k; ++i) {
    std::memcpy(histories.data() + i * t * c, batch[i].history.data(),
                static_cast<size_t>(t * c) * sizeof(float));
  }

  Result<Tensor> predictions = session_->PredictBatch(histories);
  const int64_t l = session_->pred_len();
  const auto done = Clock::now();

  // Commit the stats BEFORE fulfilling any promise: a caller whose future
  // resolved must find itself counted in Stats(). (Latency is measured to
  // batch completion, not to promise delivery.)
  lock->lock();
  completed_ += k;
  for (const Request& request : batch) {
    latency_.Record(Seconds(done - request.submitted_at));
  }
  lock->unlock();

  for (int64_t i = 0; i < k; ++i) {
    if (!predictions.ok()) {
      batch[i].promise.set_value(predictions.status());
      continue;
    }
    Tensor row = Tensor::Empty({l, c});
    std::memcpy(row.data(), predictions.value().data() + i * l * c,
                static_cast<size_t>(l * c) * sizeof(float));
    batch[i].promise.set_value(std::move(row));
  }

  lock->lock();
  return true;
}

BatcherStats Batcher::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  BatcherStats stats;
  stats.submitted = submitted_;
  stats.rejected_full = rejected_full_;
  stats.expired = expired_;
  stats.completed = completed_;
  stats.batches = batches_;
  stats.batch_size_histogram = batch_size_histogram_;
  if (latency_.count() > 0) {
    stats.p50_latency_seconds = latency_.Percentile(50.0);
    stats.p99_latency_seconds = latency_.Percentile(99.0);
    stats.p999_latency_seconds = latency_.Percentile(99.9);
  }
  return stats;
}

}  // namespace serve
}  // namespace lipformer
