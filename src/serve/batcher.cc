#include "serve/batcher.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

namespace lipformer {
namespace serve {

namespace {
using Clock = std::chrono::steady_clock;

double Seconds(Clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

int64_t CeilToMs(double seconds) {
  return static_cast<int64_t>(std::ceil(std::max(0.0, seconds) * 1000.0));
}

// Smoothing factor of the per-batch cost EWMA: heavy enough on the new
// sample that a straggler fault (slow-infer) inflates the estimate — and
// thus the shed rate — within a few batches, light enough that one odd
// batch does not swing admission.
constexpr double kCostAlpha = 0.3;

bool RowAllFinite(const float* row, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    if (!std::isfinite(row[i])) return false;
  }
  return true;
}
}  // namespace

Batcher::Batcher(InferenceSession* session, BatcherOptions options)
    : session_(session), options_(options), breaker_(options.breaker) {
  LIPF_CHECK(session != nullptr);
  LIPF_CHECK_GT(options_.max_batch_size, 0);
  LIPF_CHECK_GT(options_.queue_capacity, 0);
  cost_ewma_ = std::max(0.0, options_.cost_hint_seconds);
  batch_size_histogram_.assign(
      static_cast<size_t>(options_.max_batch_size), 0);
  worker_ = std::thread([this] { WorkerLoop(); });
}

Batcher::~Batcher() { Shutdown(); }

std::future<Result<Tensor>> Batcher::Submit(
    Tensor history, std::chrono::microseconds deadline, SubmitMode mode) {
  std::promise<Result<Tensor>> rejected;
  std::future<Result<Tensor>> rejected_future = rejected.get_future();
  if (history.dim() != 2 || history.size(0) != session_->input_len() ||
      history.size(1) != session_->channels()) {
    rejected.set_value(Status::InvalidArgument(
        "Submit expects [" + std::to_string(session_->input_len()) + ", " +
        std::to_string(session_->channels()) + "], got " +
        ShapeToString(history.shape())));
    return rejected_future;
  }

  Request request;
  request.history = std::move(history);
  request.submitted_at = Clock::now();
  if (deadline.count() > 0) {
    request.has_deadline = true;
    request.deadline = request.submitted_at + deadline;
  }
  std::future<Result<Tensor>> future = request.promise.get_future();

  std::vector<Request> swept;
  bool accepted = false;
  bool shut_down = false;
  bool dead_on_arrival = false;
  bool breaker_open = false;
  bool overloaded = false;
  int64_t retry_after_ms = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      if (shutdown_) {
        shut_down = true;
        break;
      }
      const auto now = Clock::now();
      // Dead on arrival (or expired while blocked below): never enqueue
      // work the worker could only discard.
      if (request.has_deadline && now >= request.deadline) {
        ++expired_;
        dead_on_arrival = true;
        break;
      }
      if (static_cast<int64_t>(queue_.size()) >= options_.queue_capacity) {
        // A queue pinned at capacity by already-expired requests must not
        // bounce fresh work: those entries can never occupy batch slots
        // (RunOneBatch discards them), so evict them here instead of
        // waiting for the worker to reach them.
        std::vector<Request> stale = SweepExpiredLocked(now);
        for (Request& request_stale : stale) {
          swept.push_back(std::move(request_stale));
        }
      }
      if (static_cast<int64_t>(queue_.size()) >= options_.queue_capacity) {
        if (mode == SubmitMode::kReject) {
          ++rejected_full_;
          break;
        }
        // kBlock: flow control. Wait for the worker to pop requests (or
        // for shutdown), but never past the request's own deadline —
        // blocking until the slot frees and then enqueueing dead work
        // would hand the worker a request it can only discard.
        if (request.has_deadline) {
          space_cv_.wait_until(lock, request.deadline);
        } else {
          space_cv_.wait(lock);
        }
        continue;  // re-evaluate shutdown/deadline/capacity from the top
      }
      // A slot is available; admission checks decide whether taking it
      // is useful. Breaker first: a tripped model sheds instantly.
      switch (breaker_.Admit(now)) {
        case CircuitBreaker::Admission::kReject: {
          breaker_open = true;
          retry_after_ms = breaker_.Stats(now).retry_after.count();
          break;
        }
        case CircuitBreaker::Admission::kAdmitProbe:
          request.probe = true;
          break;
        case CircuitBreaker::Admission::kAdmit:
          break;
      }
      if (breaker_open) break;
      // EWMA admission: shed when the estimated drain of the current
      // backlog (plus this request's own batch) cannot meet the deadline,
      // or exceeds the configured queue-delay cap. Probes bypass this —
      // they exist to reach the model. With no estimate yet (cost_ewma_
      // == 0) deadline policing falls back to expiry sweeps.
      if (!request.probe && cost_ewma_ > 0) {
        const int64_t live = LiveQueueCountLocked(now);
        const int64_t batches_ahead =
            (live + options_.max_batch_size - 1) / options_.max_batch_size;
        const double wait_estimate = batches_ahead * cost_ewma_;
        const double total_estimate = wait_estimate + cost_ewma_;
        const bool misses_deadline =
            request.has_deadline &&
            now + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(total_estimate)) >=
                request.deadline;
        const bool over_delay_cap =
            options_.max_queue_delay.count() > 0 &&
            wait_estimate > Seconds(options_.max_queue_delay);
        if (misses_deadline || over_delay_cap) {
          ++shed_overload_;
          overloaded = true;
          retry_after_ms = CeilToMs(wait_estimate);
          break;
        }
      }
      ++submitted_;
      queue_.push_back(std::move(request));
      accepted = true;
      break;
    }
  }
  // Fulfill outside mu_ so a caller blocked on one of these futures never
  // contends with the worker for the queue lock on wake-up.
  for (Request& stale : swept) {
    stale.promise.set_value(Status::DeadlineExceeded(
        "request expired before its batch was executed"));
  }
  if (!swept.empty()) {
    // The sweep freed slots; one was (maybe) consumed above, any others
    // can admit blocked submitters.
    space_cv_.notify_all();
  }
  if (!accepted) {
    if (shut_down) {
      rejected.set_value(Status::Unavailable("batcher is shut down"));
    } else if (dead_on_arrival) {
      rejected.set_value(Status::DeadlineExceeded(
          "deadline expired before the request could be enqueued"));
    } else if (breaker_open) {
      rejected.set_value(Status::Unavailable(
          "circuit breaker open for this model; retry after " +
          std::to_string(std::max<int64_t>(retry_after_ms, 1)) + "ms"));
    } else if (overloaded) {
      rejected.set_value(Status::Overloaded(
          "overloaded: estimated queue drain " +
          std::to_string(retry_after_ms) +
          "ms exceeds what this request can wait; retry after " +
          std::to_string(std::max<int64_t>(retry_after_ms, 1)) + "ms"));
    } else {
      rejected.set_value(Status::Unavailable(
          "serving queue full (" + std::to_string(options_.queue_capacity) +
          " pending requests); retry later"));
    }
    return rejected_future;
  }
  cv_.notify_all();
  return future;
}

int64_t Batcher::LiveQueueCountLocked(Clock::time_point now) const {
  int64_t live = 0;
  for (const Request& request : queue_) {
    if (!request.has_deadline || now < request.deadline) ++live;
  }
  return live;
}

Clock::time_point Batcher::EarliestDeadlineLocked(
    Clock::time_point now) const {
  Clock::time_point earliest{};
  for (const Request& request : queue_) {
    if (!request.has_deadline || now >= request.deadline) continue;
    if (earliest == Clock::time_point{} || request.deadline < earliest) {
      earliest = request.deadline;
    }
  }
  return earliest;
}

std::vector<Batcher::Request> Batcher::SweepExpiredLocked(
    Clock::time_point now) {
  std::vector<Request> swept;
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->has_deadline && now >= it->deadline) {
      if (it->probe) breaker_.AbandonProbe();
      swept.push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  expired_ += static_cast<int64_t>(swept.size());
  return swept;
}

void Batcher::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  space_cv_.notify_all();  // unblock kBlock submitters with Unavailable
  // Separate mutex so concurrent Shutdown calls serialize on the join
  // without holding mu_ (the worker needs it to drain).
  std::lock_guard<std::mutex> join_lock(join_mu_);
  if (worker_.joinable()) worker_.join();
}

void Batcher::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (shutdown_) return;  // drained
      continue;
    }
    if (!shutdown_) {
      // Coalesce: give concurrent submitters max_delay to fill the batch
      // — but cap the wait at the earliest queued deadline (minus the
      // estimated batch cost), so a nearly-expired head-of-line request
      // fires its batch while it can still be answered instead of
      // inflating the delay and expiring. On shutdown the remaining
      // queue is executed immediately.
      const auto batch_deadline = Clock::now() + options_.max_delay;
      // Floor of 2: a single queued request is coalescing, not backlog,
      // even when the queue capacity itself is 1.
      const int64_t brownout_depth =
          std::max<int64_t>(2, options_.queue_capacity / 2);
      bool brownout = false;
      for (;;) {
        if (shutdown_) break;
        const auto now = Clock::now();
        const int64_t live = LiveQueueCountLocked(now);
        if (live >= options_.max_batch_size) break;
        if (live >= brownout_depth) {
          // Brownout: the backlog is deep enough that waiting for
          // stragglers only lengthens the queue; fire immediately.
          brownout = true;
          break;
        }
        auto wait_point = batch_deadline;
        const auto earliest = EarliestDeadlineLocked(now);
        if (earliest != Clock::time_point{}) {
          const auto margin = std::chrono::duration_cast<Clock::duration>(
              std::chrono::duration<double>(cost_ewma_));
          const auto capped = earliest - margin;
          if (capped < wait_point) wait_point = capped;
        }
        if (now >= wait_point) break;
        cv_.wait_until(lock, wait_point);
      }
      if (brownout) ++brownout_batches_;
    }
    RunOneBatch(&lock);
  }
}

bool Batcher::RunOneBatch(std::unique_lock<std::mutex>* lock) {
  const auto now = Clock::now();
  std::vector<Request> batch;
  std::vector<Request> expired;
  while (!queue_.empty() &&
         static_cast<int64_t>(batch.size()) < options_.max_batch_size) {
    Request request = std::move(queue_.front());
    queue_.pop_front();
    if (request.has_deadline && now >= request.deadline) {
      ++expired_;
      if (request.probe) breaker_.AbandonProbe();
      expired.push_back(std::move(request));
    } else {
      batch.push_back(std::move(request));
    }
  }
  lock->unlock();

  // Every popped request (executed or expired) freed a queue slot.
  if (!batch.empty() || !expired.empty()) space_cv_.notify_all();

  for (Request& request : expired) {
    request.promise.set_value(Status::DeadlineExceeded(
        "request expired before its batch was executed"));
  }

  if (batch.empty()) {
    lock->lock();
    return false;
  }

  // Resolves requests whose deadline has passed `at`, removing them from
  // `requests` (order preserved). Stats committed before fulfillment, as
  // everywhere.
  const auto shed_expired = [&](std::vector<Request>* requests,
                                Clock::time_point at) {
    std::vector<Request> keep;
    std::vector<Request> late;
    keep.reserve(requests->size());
    for (Request& request : *requests) {
      if (request.has_deadline && at >= request.deadline) {
        late.push_back(std::move(request));
      } else {
        keep.push_back(std::move(request));
      }
    }
    *requests = std::move(keep);
    if (late.empty()) return;
    lock->lock();
    expired_ += static_cast<int64_t>(late.size());
    for (const Request& request : late) {
      if (request.probe) breaker_.AbandonProbe();
    }
    lock->unlock();
    for (Request& request : late) {
      request.promise.set_value(Status::DeadlineExceeded(
          "request expired before its batch was executed"));
    }
  };

  // First shed: deadlines can pass between the formation sweep above and
  // here (the worker may have slept in the coalescing wait since `now`).
  // Doing it before the tensor build keeps dead rows out of the copy.
  shed_expired(&batch, Clock::now());
  if (batch.empty()) {
    lock->lock();
    return true;
  }

  int64_t k = static_cast<int64_t>(batch.size());
  const int64_t t = session_->input_len();
  const int64_t c = session_->channels();
  Tensor histories = Tensor::Empty({k, t, c});
  for (int64_t i = 0; i < k; ++i) {
    std::memcpy(histories.data() + i * t * c, batch[i].history.data(),
                static_cast<size_t>(t * c) * sizeof(float));
  }

  // Final shed AT execution start: deadlines that fell inside the
  // tensor-build window above are caught here, compacting the already
  // built batch, so the decision to execute and the execution itself
  // share one timestamp — no request ever enters the model expired.
  const auto exec_start = Clock::now();
  {
    bool any_late = false;
    for (const Request& request : batch) {
      if (request.has_deadline && exec_start >= request.deadline) {
        any_late = true;
        break;
      }
    }
    if (any_late) {
      int64_t w = 0;
      for (int64_t i = 0; i < k; ++i) {
        if (batch[static_cast<size_t>(i)].has_deadline &&
            exec_start >= batch[static_cast<size_t>(i)].deadline) {
          continue;
        }
        if (w != i) {
          std::memcpy(histories.data() + w * t * c,
                      histories.data() + i * t * c,
                      static_cast<size_t>(t * c) * sizeof(float));
        }
        ++w;
      }
      shed_expired(&batch, exec_start);
      if (batch.empty()) {
        lock->lock();
        return true;
      }
      k = static_cast<int64_t>(batch.size());
      Tensor trimmed = Tensor::Empty({k, t, c});
      std::memcpy(trimmed.data(), histories.data(),
                  static_cast<size_t>(k * t * c) * sizeof(float));
      histories = std::move(trimmed);
    }
  }

  // Tripwire for the invariant above (the chaos gate asserts it stays
  // 0): rows entering the model already expired. Structurally zero after
  // the exec_start shed; counts only if that enforcement regresses.
  int64_t past_deadline = 0;
  for (const Request& request : batch) {
    if (request.has_deadline && exec_start >= request.deadline) {
      ++past_deadline;
    }
  }

  Result<Tensor> predictions = session_->PredictBatch(histories);
  const int64_t l = session_->pred_len();
  const auto done = Clock::now();
  const double batch_seconds = Seconds(done - exec_start);

  // A non-finite forecast must surface as a typed error, never as silent
  // garbage to the client; each bad row also counts as a model failure
  // for the breaker.
  const bool batch_failed = !predictions.ok();
  std::vector<bool> row_finite(static_cast<size_t>(k), true);
  int64_t nonfinite = 0;
  if (!batch_failed) {
    const float* data = predictions.value().data();
    for (int64_t i = 0; i < k; ++i) {
      if (!RowAllFinite(data + i * l * c, l * c)) {
        row_finite[static_cast<size_t>(i)] = false;
        ++nonfinite;
      }
    }
  }

  // Commit the stats BEFORE fulfilling any promise: a caller whose future
  // resolved must find itself counted in Stats(). (Latency is measured to
  // batch completion, not to promise delivery.)
  lock->lock();
  ++batches_;
  ++batch_size_histogram_[static_cast<size_t>(k) - 1];
  completed_ += k;
  nonfinite_answers_ += nonfinite;
  executed_past_deadline_ += past_deadline;
  cost_ewma_ = cost_ewma_ <= 0
                   ? batch_seconds
                   : (1.0 - kCostAlpha) * cost_ewma_ + kCostAlpha * batch_seconds;
  for (int64_t i = 0; i < k; ++i) {
    const Request& request = batch[static_cast<size_t>(i)];
    latency_.Record(Seconds(done - request.submitted_at));
    if (!batch_failed && row_finite[static_cast<size_t>(i)]) {
      breaker_.OnSuccess(request.probe);
    } else {
      breaker_.OnFailure(request.probe, done);
    }
  }
  lock->unlock();

  for (int64_t i = 0; i < k; ++i) {
    if (batch_failed) {
      batch[static_cast<size_t>(i)].promise.set_value(predictions.status());
      continue;
    }
    if (!row_finite[static_cast<size_t>(i)]) {
      batch[static_cast<size_t>(i)].promise.set_value(Status::Internal(
          "model produced a non-finite forecast; answer suppressed"));
      continue;
    }
    Tensor row = Tensor::Empty({l, c});
    std::memcpy(row.data(), predictions.value().data() + i * l * c,
                static_cast<size_t>(l * c) * sizeof(float));
    batch[static_cast<size_t>(i)].promise.set_value(std::move(row));
  }

  lock->lock();
  return true;
}

BatcherStats Batcher::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto now = Clock::now();
  BatcherStats stats;
  stats.submitted = submitted_;
  stats.rejected_full = rejected_full_;
  stats.expired = expired_;
  stats.shed_overload = shed_overload_;
  stats.completed = completed_;
  stats.nonfinite_answers = nonfinite_answers_;
  stats.executed_past_deadline = executed_past_deadline_;
  stats.batches = batches_;
  stats.brownout_batches = brownout_batches_;
  stats.queue_depth = LiveQueueCountLocked(now);
  stats.cost_ewma_seconds = cost_ewma_;
  stats.breaker = breaker_.Stats(now);
  stats.batch_size_histogram = batch_size_histogram_;
  if (latency_.count() > 0) {
    stats.p50_latency_seconds = latency_.Percentile(50.0);
    stats.p99_latency_seconds = latency_.Percentile(99.0);
    stats.p999_latency_seconds = latency_.Percentile(99.9);
  }
  return stats;
}

}  // namespace serve
}  // namespace lipformer
