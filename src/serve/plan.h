#ifndef LIPFORMER_SERVE_PLAN_H_
#define LIPFORMER_SERVE_PLAN_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "serve/plan_exec.h"
#include "tensor/tensor.h"

// Ahead-of-time inference plans. Serving shapes are static per bundle, so
// InferenceSession traces the model's forward ONCE per batch size and
// compiles the trace into a flat op program plus a preplanned activation
// arena:
//
//   * Trace. A trace::Recorder (tensor/op_trace.h) captures every forward
//     kernel invocation with its resolved dims and operand pointers.
//     Values are identified by data pointer; the recorder keeps every
//     operand Tensor alive so the storage pool cannot recycle a pointer
//     mid-trace. Storage-sharing views (Reshape/Squeeze/Unsqueeze,
//     eval-mode Dropout) keep the pointer and need no records.
//   * Classify. An operand produced by an earlier record (or the plan
//     input) is an activation; anything else is a constant — weights,
//     attention masks, the zero time-feature tensors the session builds —
//     and the plan takes ownership of its Tensor so the pointer stays
//     valid for the plan's lifetime.
//   * Elide. Identity copies (full-range Slice, layout-preserving Permute
//     such as the head split/merge at num_heads == 1, single-input
//     Concat) are removed at compile time by aliasing output to input.
//   * Fuse. A non-identity Permute whose only consumer is a GEMM operand
//     is folded into that GEMM's pack phase when the permuted view is a
//     separable gather (offset(row, col) == row_off[row] + col_off[col])
//     — e.g. the attention head-split transposes and the 4-D patch
//     reshuffle. The pack reads the pre-permute source directly
//     (GemmBatch row/column offset overrides), writing identical panel
//     bytes, so the transpose copy disappears from the program with
//     bitwise-identical results.
//   * Arena. Each activation gets a [def, last_use] interval; a first-fit
//     allocator with hole coalescing lays all of them out in one slab
//     (offsets 64-byte aligned). Execution leases one pooled slab per
//     request — every intermediate of the forward costs zero pool
//     lookups.
//   * Prepack. Constant B operands of fp32 GEMMs are packed into panel
//     layout once at compile time (PackGemmB); the hot path runs the
//     compute phase only. Quantized Linears keep their prepacked int8
//     weights and get arena scratch for activation quantization.
//   * Validate. The compiled program is executed against the module
//     forward on the trace input AND on a second, different input;
//     outputs must match bitwise (memcmp). The second input catches any
//     input-dependent value that escaped tracing and was wrongly frozen
//     as a constant. Ops with data-dependent control flow (IndexSelect,
//     Autocorrelation, ...) poison the trace outright and compilation
//     fails cleanly, so the session falls back to the module path.
//
// Plans are immutable after Compile and shareable across threads: the
// only per-request state is the leased arena.

namespace lipformer {
namespace serve {

// Compile-time facts about one plan, for stats output and tests.
struct PlanStats {
  int64_t batch_size = 0;
  int64_t num_ops = 0;          // executable records
  int64_t num_traced = 0;       // records captured by the trace
  int64_t num_elided = 0;       // identity copies removed
  int64_t fused_gemm_operands = 0;  // permutes folded into GEMM packing
  int64_t arena_floats = 0;     // per-request slab size
  int64_t arena_bytes = 0;
  int64_t num_constants = 0;    // captured constant tensors
  int64_t constant_bytes = 0;   // bytes the plan keeps alive (excl. weights)
  int64_t prepacked_gemms = 0;  // fp32 GEMMs with compile-time packed B
  int64_t prepacked_bytes = 0;
  // Fusion pass (DESIGN.md §11 "Fusion pass"):
  int64_t fused_epilogues = 0;   // GEMMs that absorbed bias/act/residual
  int64_t fused_chains = 0;      // kFusedChain ops emitted
  int64_t fused_chain_ops = 0;   // elementwise ops absorbed into chains
  int64_t passes_eliminated = 0; // whole memory passes removed by fusion
  int64_t arena_saved_bytes = 0; // arena shrink vs the unfused layout
};

// Aggregated per-op-kind timing (profiling mode only).
struct PlanOpTiming {
  const char* name = nullptr;
  int64_t calls = 0;
  int64_t total_ns = 0;
};

class InferencePlan {
 public:
  // A module forward at the plan's fixed shapes: scaled input in, scaled
  // prediction out. Called up to three times during Compile (once traced,
  // twice for validation).
  using ForwardFn = std::function<Tensor(const Tensor&)>;

  // Traces `forward` at sample_input's shape and compiles it.
  // check_input must have the same shape but different values; it drives
  // the second bitwise validation run. Fails (Status::Internal) when the
  // trace was poisoned by an uncompilable op, an operand cannot be
  // classified, or either validation run is not bitwise identical to the
  // module path.
  static Result<std::shared_ptr<const InferencePlan>> Compile(
      const ForwardFn& forward, const Tensor& sample_input,
      const Tensor& check_input);

  // Runs the program against a pooled arena slab. `input` must match the
  // compile-time input shape (LIPF_CHECK — the session validated the
  // request already). Thread-safe; bitwise identical to the module
  // forward on the same input.
  Tensor Execute(const Tensor& input) const;

  const PlanStats& stats() const { return stats_; }
  const Shape& input_shape() const { return input_shape_; }
  const Shape& output_shape() const { return output_shape_; }
  int64_t executions() const {
    return executions_.load(std::memory_order_relaxed);
  }

  // Per-op-kind wall-clock accounting. Off by default (two clock reads
  // per op); `lipformer_cli serve` and the profiling pass of
  // bench_serving turn it on.
  void set_profiling(bool enabled) const {
    profiling_.store(enabled, std::memory_order_relaxed);
  }
  bool profiling() const {
    return profiling_.load(std::memory_order_relaxed);
  }
  // Kinds with at least one recorded call, in program-kind order.
  std::vector<PlanOpTiming> OpTimings() const;

 private:
  InferencePlan() = default;

  std::vector<PlanOp> ops_;
  Shape input_shape_;
  Shape output_shape_;
  int64_t arena_floats_ = 0;
  int64_t input_off_ = -1;  // -1: input unused by any surviving op
  // Output location: arena offset, or a constant/input alias.
  int64_t output_off_ = -1;
  const float* output_const_ = nullptr;
  bool output_is_input_ = false;
  // Constants captured from the trace; holding the Tensor pins the
  // underlying storage so the raw pointers in ops_ stay valid. (Prepacked
  // int8 weights are owned by the session's model, which outlives the
  // plan.)
  std::vector<Tensor> constants_;
  // Compile-time packed B panels, one buffer per prepacked GEMM; inner
  // vectors never reallocate after Compile so their data() is stable.
  std::vector<std::vector<float>> prepacked_;
  PlanStats stats_;

  mutable std::atomic<bool> profiling_{false};
  mutable PlanProfile profile_;
  mutable std::atomic<int64_t> executions_{0};
};

}  // namespace serve
}  // namespace lipformer

#endif  // LIPFORMER_SERVE_PLAN_H_
