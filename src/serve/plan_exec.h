#ifndef LIPFORMER_SERVE_PLAN_EXEC_H_
#define LIPFORMER_SERVE_PLAN_EXEC_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "tensor/gemm_int8.h"
#include "tensor/op_trace.h"

// Execution of compiled inference plans (serve/plan.h). A plan is a flat
// std::vector<PlanOp>; every operand location was resolved at compile
// time to either a float offset into the per-request activation arena or
// a raw pointer into plan-owned constant storage. ExecutePlanProgram is a
// single pass over the vector calling the raw kernels (tensor/ops_raw.h),
// the packed GEMMs (tensor/gemm.h) and the quantized linear
// (nn/linear.h) directly: no shape checks, no virtual dispatch, no
// storage-pool traffic, no autograd guards.
//
// The program and its constants are immutable after compilation, and the
// arena base is the only mutable state, so any number of threads may
// execute the same program concurrently against distinct arenas.

namespace lipformer {
namespace serve {

// One step of a compiled elementwise chain (kFusedChain ops), the
// compile-time mirror of raw::ChainStep: the other operand of a binary
// step is stored as constant pointer / arena offset plus an index into
// the owning op's chain_bases row table, and resolved against the arena
// at execution time.
struct PlanChainStep {
  bool is_binary = false;
  bool prev_is_a = true;  // flowing value is the binary's left operand
  int32_t sub = 0;        // raw::Bin when binary, raw::Un otherwise
  float scalar = 0.0f;
  const float* other_const = nullptr;  // binary: constant operand, or
  int64_t other_off = -1;              // arena offset when null
  int64_t base_idx = -1;               // chain_bases table for this step
  int64_t inner_step = 0;              // 0 (broadcast) or 1 (dense) cols
};

// One compiled op. Dim slots d[] follow trace::TraceRecord exactly (see
// tensor/op_trace.h); aux slots are kind-specific:
//   kBinaryBcast: aux0=oshape aux1=sa aux2=sb
//   kGemm:        aux0=a_mat_index aux1=b_mat_index
//   kPermute:     aux0=oshape aux1=gather
//   kConcat:      aux0=per-input mids, aux1=per-input slot offsets
//   kFusedChain:  d0=rows d1=w, chain/chain_bases below
struct PlanOp {
  trace::OpKind kind = trace::OpKind::kBinary;
  int32_t sub = 0;
  float scalar = 0.0f;
  bool trans_a = false;
  bool trans_b = false;
  int64_t d[5] = {0, 0, 0, 0, 0};
  std::vector<int64_t> aux0, aux1, aux2;

  // kGemm with a Permute fused into the pack phase (serve/plan.cc): when
  // non-empty, stored element (r, c) of batch position bi's A matrix is
  // read from input 0 at a_row_off[bi * m + r] + a_col_off[c] instead of
  // the dense layout; b_row_off / b_col_off do the same per stored B
  // matrix (GemmBatch separable-gather overrides).
  std::vector<int64_t> a_row_off, a_col_off, b_row_off, b_col_off;

  // Input i reads from in_const[i] when non-null, else from
  // arena + in_off[i]. Output always writes into the arena.
  std::vector<const float*> in_const;
  std::vector<int64_t> in_off;
  int64_t out_off = 0;
  int64_t out_numel = 0;

  // kQuantLinear: prepacked int8 weight (owned by the session's model)
  // plus arena scratch offsets for the row-quantized activations, row
  // scales, and int32 accumulator.
  const Int8PackedWeight* packed = nullptr;
  int64_t a8_off = 0;
  int64_t rs_off = 0;
  int64_t c32_off = 0;

  // kGemm with a constant B operand: panels packed once at compile time
  // (PackGemmB) into plan-owned storage; executes via
  // PackedGemmBatchedPrepacked. Null -> B is an activation and the op
  // packs per call like the module path.
  const float* prepacked_b = nullptr;

  // Fused GEMM epilogue (kGemm and kQuantLinear): bias + activation
  // and/or a residual binary applied per cache-hot C region by the GEMM
  // itself (GemmEpilogue, tensor/gemm.h) instead of as separate passes.
  // Each operand is a constant pointer or (when null) an arena offset.
  bool ep_has_bias = false;
  bool ep_has_res = false;
  const float* ep_bias_const = nullptr;
  int64_t ep_bias_off = -1;
  int32_t ep_act = 0;  // FusedAct
  const float* ep_res_const = nullptr;
  int64_t ep_res_off = -1;
  int32_t ep_res_op = 0;  // raw::Bin
  bool ep_res_is_lhs = false;

  // kFusedChain: the step list plus the plan-owned per-row offset tables
  // binary steps index through (PlanChainStep::base_idx).
  std::vector<PlanChainStep> chain;
  std::vector<std::vector<int64_t>> chain_bases;

  int64_t macs = 0;  // kGemm MAC charge (kQuantLinear charges internally)
};

// Longest run of elementwise ops a single kFusedChain op may absorb; the
// plan compiler splits longer runs. Bounds the resolved-step stack array
// in the executor.
inline constexpr int64_t kMaxChainSteps = 16;

// Per-kind execution counters, aggregated across all arenas sharing the
// program. Written only when a profile is passed to ExecutePlanProgram
// (timing costs two clock reads per op, so the serving hot path passes
// nullptr unless stats were requested).
struct PlanProfile {
  std::atomic<int64_t> calls[static_cast<int>(trace::OpKind::kNumKinds)] = {};
  std::atomic<int64_t> ns[static_cast<int>(trace::OpKind::kNumKinds)] = {};
};

// Runs every op against the arena at `base`. The caller owns the arena
// and has already written the plan input into it.
void ExecutePlanProgram(const std::vector<PlanOp>& ops, float* base,
                        PlanProfile* profile);

}  // namespace serve
}  // namespace lipformer

#endif  // LIPFORMER_SERVE_PLAN_EXEC_H_
