#ifndef LIPFORMER_SERVE_CHECKPOINT_H_
#define LIPFORMER_SERVE_CHECKPOINT_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "tensor/tensor.h"

// Checkpoint v2: a self-describing container of named, shaped tensors plus
// a string metadata map. This replaces the legacy v1 parameter dump
// (`u64 count` then `u64 numel` + raw floats per parameter), which was
// shape-blind: any checkpoint whose flat sizes happened to line up loaded
// "successfully" into the wrong architecture and produced garbage.
//
// File layout (native-endian, like v1):
//
//   [0..7]   magic "LPFCKPT2"
//   u32      version (currently 2)
//   u32      metadata entry count
//            per entry: u32 key_len, key bytes, u32 value_len, value bytes
//   u32      tensor count
//            per tensor: u32 name_len, name bytes,
//                        u32 rank, i64 dims[rank],
//                        u64 byte_len (= numel * sizeof(float)),
//                        float data[numel]
//   EOF      trailing bytes are an error
//
// Readers verify the magic, the version, every length field against the
// remaining file size, the dims/byte_len consistency of every tensor, and
// that the file ends exactly after the last tensor. A file that starts
// with the v1 layout instead of the magic is detected and rejected with a
// pointer at the `checkpoint_convert` migration tool.

namespace lipformer {
namespace serve {

// Reserved name prefix for non-parameter tensors carried alongside model
// weights (e.g. the fitted scaler of a serving bundle).
// Module::LoadParameters skips tensors with this prefix.
inline constexpr char kReservedTensorPrefix[] = "__";

struct CheckpointTensor {
  std::string name;
  Tensor data;  // shape is authoritative: data.shape()
};

// In-memory checkpoint: ordered tensors + metadata.
struct Checkpoint {
  std::map<std::string, std::string> metadata;
  std::vector<CheckpointTensor> tensors;

  // nullptr when absent.
  const CheckpointTensor* Find(const std::string& name) const;
  // Metadata lookup with default.
  std::string Meta(const std::string& key, const std::string& def) const;
};

// Writes `ckpt` to `path` in the v2 layout above.
Status WriteCheckpoint(const std::string& path, const Checkpoint& ckpt);

// Reads and fully validates a v2 checkpoint. Returns InvalidArgument for
// legacy v1 files (with migration advice), short/truncated files, length
// fields that overrun the file, and trailing bytes after the last tensor.
Result<Checkpoint> ReadCheckpoint(const std::string& path);

}  // namespace serve
}  // namespace lipformer

#endif  // LIPFORMER_SERVE_CHECKPOINT_H_
