#ifndef LIPFORMER_SERVE_QUANTIZE_H_
#define LIPFORMER_SERVE_QUANTIZE_H_

#include <cstdint>
#include <string>

#include "common/status.h"

// Offline bundle quantizer (DESIGN.md "Quantized inference"): converts a
// fp32 serving bundle (serve/session.h) into an int8 variant of the same
// checkpoint-v2 format. Every nn::Linear weight [in, out] is replaced by
// two reserved tensors in the "__quant__." namespace:
//
//   __quant__.<param>.w8     int8 values byte-packed into a float tensor
//                            of shape {ceil(in*out / 4)} (raw bytes, no
//                            float interpretation — the v2 container only
//                            carries float payloads)
//   __quant__.<param>.scale  fp32 per-output-channel scales, shape {out}
//
// and the metadata gains quantized=int8. Biases, norm parameters, the
// fitted scaler and all other tensors stay fp32 and are copied through
// unchanged. InferenceSession::Open recognizes the metadata flag and
// loads the int8 path transparently; the `quantize_bundle` tool is the
// CLI front end.
//
// Not every Linear is worth quantizing: below kQuantMinLinearDim in
// either dimension the per-row activation-quantize pass and the kGemmNR
// column-panel padding cost more than the int8 micro-kernel saves
// (LiPFormer's patch head is Linear(n_patches -> n_target_patches),
// e.g. 7 -> 2). Such layers are copied through as fp32 and served by
// the fp32 GEMM; the decision is a pure function of the weight shape,
// so batched and serial inference still take identical code paths.

namespace lipformer {
namespace serve {

// Metadata key/value marking an int8 bundle.
inline constexpr char kMetaQuantized[] = "quantized";
inline constexpr char kQuantSchemeInt8[] = "int8";

// Linear weights with in_features or out_features below this stay fp32
// (one kGemmNR column panel / one AVX-512 depth vector).
inline constexpr int64_t kQuantMinLinearDim = 16;

// Reserved tensor names for the quantized form of parameter `param`.
std::string QuantWeightTensorName(const std::string& param);
std::string QuantScaleTensorName(const std::string& param);

// Reads the fp32 bundle at `in_path` (full per-tensor name/shape
// verification against the architecture its metadata describes),
// quantizes every Linear weight per-channel to int8, and writes the
// quantized bundle to `out_path`. Fails with InvalidArgument when the
// input is not a serving bundle or is already quantized, and when
// `out_path` exists unless `force` is set.
Status QuantizeBundleFile(const std::string& in_path,
                          const std::string& out_path, bool force);

}  // namespace serve
}  // namespace lipformer

#endif  // LIPFORMER_SERVE_QUANTIZE_H_
