#include "models/tide.h"

#include "core/instance_norm.h"

namespace lipformer {

TideResBlock::TideResBlock(int64_t in_dim, int64_t hidden_dim,
                           int64_t out_dim, Rng& rng, float dropout) {
  up_ = std::make_unique<Linear>(in_dim, hidden_dim, rng);
  down_ = std::make_unique<Linear>(hidden_dim, out_dim, rng);
  skip_ = std::make_unique<Linear>(in_dim, out_dim, rng);
  norm_ = std::make_unique<LayerNorm>(out_dim, rng);
  RegisterModule("up", up_.get());
  RegisterModule("down", down_.get());
  RegisterModule("skip", skip_.get());
  RegisterModule("norm", norm_.get());
  if (dropout > 0.0f) {
    dropout_ = std::make_unique<Dropout>(dropout, rng);
    RegisterModule("dropout", dropout_.get());
  }
}

Variable TideResBlock::Forward(const Variable& x) const {
  Variable h = down_->Forward(up_->Forward(x, Activation::kRelu));
  if (dropout_) h = dropout_->Forward(h);
  return norm_->Forward(Add(skip_->Forward(x), h));
}

Tide::Tide(const ForecasterDims& dims, int64_t num_covariates,
           const TideConfig& config, uint64_t seed)
    : dims_(dims), num_covariates_(num_covariates), config_(config) {
  Rng rng(seed);
  const int64_t p = config.covariate_proj_dim;
  if (num_covariates_ > 0) {
    covariate_proj_ = std::make_unique<Linear>(num_covariates_, p, rng);
    RegisterModule("covariate_proj", covariate_proj_.get());
  }
  const int64_t cov_flat = num_covariates_ > 0 ? dims.pred_len * p : 0;
  encoder1_ = std::make_unique<TideResBlock>(dims.input_len + cov_flat,
                                             config.hidden_dim,
                                             config.encoder_dim, rng,
                                             config.dropout);
  encoder2_ = std::make_unique<TideResBlock>(config.encoder_dim,
                                             config.hidden_dim,
                                             config.encoder_dim, rng,
                                             config.dropout);
  decoder_ = std::make_unique<TideResBlock>(
      config.encoder_dim, config.hidden_dim,
      dims.pred_len * config.decoder_out_dim, rng, config.dropout);
  const int64_t step_in =
      config.decoder_out_dim + (num_covariates_ > 0 ? p : 0);
  temporal_decoder_ = std::make_unique<Linear>(step_in, 1, rng);
  global_skip_ = std::make_unique<Linear>(dims.input_len, dims.pred_len,
                                          rng);
  RegisterModule("encoder1", encoder1_.get());
  RegisterModule("encoder2", encoder2_.get());
  RegisterModule("decoder", decoder_.get());
  RegisterModule("temporal_decoder", temporal_decoder_.get());
  RegisterModule("global_skip", global_skip_.get());
}

Variable Tide::Forward(const Batch& batch) {
  const int64_t b = batch.x.size(0);
  const int64_t t = batch.x.size(1);
  const int64_t c = batch.x.size(2);
  const int64_t l = dims_.pred_len;
  LIPF_CHECK_EQ(t, dims_.input_len);
  LIPF_CHECK_EQ(c, dims_.channels);

  Variable x(batch.x);
  auto [normalized, norm_state] = InstanceNormalize(x);
  Variable flat = Reshape(Permute(normalized, {0, 2, 1}),
                          Shape{b * c, t});  // channel-independent rows

  // Project future covariates per step and tile them across channels (the
  // covariates are shared by all channels of a window).
  Variable proj_steps;   // [b*c, L, p]
  Variable encoder_in = flat;
  if (covariate_proj_) {
    LIPF_CHECK_EQ(batch.y_cov_num.size(2), num_covariates_);
    Variable cov(batch.y_cov_num);                       // [b, L, cf]
    Variable proj = covariate_proj_->Forward(cov);       // [b, L, p]
    std::vector<int64_t> repeat(static_cast<size_t>(b * c));
    for (int64_t i = 0; i < b * c; ++i) {
      repeat[static_cast<size_t>(i)] = i / c;
    }
    proj_steps = IndexSelect(proj, 0, repeat);           // [b*c, L, p]
    Variable cov_flat = Reshape(
        proj_steps, Shape{b * c, l * config_.covariate_proj_dim});
    encoder_in = Concat({flat, cov_flat}, 1);
  }

  Variable latent = encoder2_->Forward(encoder1_->Forward(encoder_in));
  Variable decoded = decoder_->Forward(latent);  // [b*c, L*d]
  Variable per_step =
      Reshape(decoded, Shape{b * c, l, config_.decoder_out_dim});

  Variable step_in = per_step;
  if (covariate_proj_) step_in = Concat({per_step, proj_steps}, 2);
  Variable y = Reshape(temporal_decoder_->Forward(step_in),
                       Shape{b * c, l});  // [b*c, L]
  y = Add(y, global_skip_->Forward(flat));

  Variable out = Permute(Reshape(y, Shape{b, c, l}), {0, 2, 1});
  return InstanceDenormalize(out, norm_state);
}

}  // namespace lipformer
