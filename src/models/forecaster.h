#ifndef LIPFORMER_MODELS_FORECASTER_H_
#define LIPFORMER_MODELS_FORECASTER_H_

#include <string>

#include "data/window_dataset.h"
#include "nn/module.h"

namespace lipformer {

// Common interface for every forecasting model in the repository (the
// LiPFormer core and all baselines). A model maps a Batch to a prediction
// of shape [b, L, c]; covariate-aware models (LiPFormer, TiDE, covariate-
// augmented baselines) additionally read batch.y_cov_* / y_time.
class Forecaster : public Module {
 public:
  ~Forecaster() override = default;

  virtual Variable Forward(const Batch& batch) = 0;

  virtual std::string name() const = 0;

  virtual int64_t input_len() const = 0;
  virtual int64_t pred_len() const = 0;
  virtual int64_t channels() const = 0;
};

// Shared dimensions every model constructor takes.
struct ForecasterDims {
  int64_t input_len = 96;
  int64_t pred_len = 96;
  int64_t channels = 7;
};

}  // namespace lipformer

#endif  // LIPFORMER_MODELS_FORECASTER_H_
