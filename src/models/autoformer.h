#ifndef LIPFORMER_MODELS_AUTOFORMER_H_
#define LIPFORMER_MODELS_AUTOFORMER_H_

#include <memory>
#include <string>
#include <vector>

#include "models/decomposition.h"
#include "models/forecaster.h"
#include "nn/layer_norm.h"
#include "nn/linear.h"

namespace lipformer {

// Auto-Correlation mechanism (Wu et al., NeurIPS 2021), simplified: lag
// scores are computed from the q/k cross-correlation via FFT
// (Wiener-Khinchin), the top-k lags (k = factor * log S) are selected from
// the batch-mean score, and the output aggregates time-rolled values
// weighted by the per-batch softmax over those lags. Gradients flow through
// the value path; the discrete lag selection is score-driven as in the
// original. See DESIGN.md for the simplification notes.
class AutoCorrelationAttention : public Module {
 public:
  AutoCorrelationAttention(int64_t model_dim, Rng& rng, float factor = 1.0f);

  Variable Forward(const Variable& x) const;

 private:
  int64_t model_dim_;
  float factor_;
  std::unique_ptr<Linear> wq_;
  std::unique_ptr<Linear> wk_;
  std::unique_ptr<Linear> wv_;
  std::unique_ptr<Linear> wo_;
};

struct AutoformerConfig {
  int64_t model_dim = 64;
  int64_t num_layers = 1;
  int64_t ffn_dim = 256;
  int64_t moving_avg_kernel = 25;
  float autocorrelation_factor = 1.0f;
};

// Autoformer forecaster, simplified to an encoder + linear heads: the
// input is decomposed into trend and seasonal parts; the trend is
// extrapolated by a per-channel linear map, the seasonal part runs through
// embedding + AutoCorrelation encoder layers (with inner decomposition
// blocks) and a temporal projection. Used in Table XII.
class Autoformer : public Forecaster {
 public:
  Autoformer(const ForecasterDims& dims, const AutoformerConfig& config,
             uint64_t seed = 1);

  Variable Forward(const Batch& batch) override;

  std::string name() const override { return "Autoformer"; }
  int64_t input_len() const override { return dims_.input_len; }
  int64_t pred_len() const override { return dims_.pred_len; }
  int64_t channels() const override { return dims_.channels; }

 private:
  struct Layer {
    std::unique_ptr<AutoCorrelationAttention> attention;
    std::unique_ptr<Linear> ffn_up;
    std::unique_ptr<Linear> ffn_down;
    std::unique_ptr<LayerNorm> norm;
  };

  ForecasterDims dims_;
  AutoformerConfig config_;
  Tensor avg_matrix_;
  std::unique_ptr<Linear> trend_proj_;   // T -> L per channel
  std::unique_ptr<Linear> input_embed_;  // c -> d
  std::vector<Layer> layers_;
  std::unique_ptr<Linear> channel_head_;  // d -> c
  std::unique_ptr<Linear> time_head_;     // T -> L
};

}  // namespace lipformer

#endif  // LIPFORMER_MODELS_AUTOFORMER_H_
