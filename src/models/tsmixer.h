#ifndef LIPFORMER_MODELS_TSMIXER_H_
#define LIPFORMER_MODELS_TSMIXER_H_

#include <memory>
#include <string>
#include <vector>

#include "models/forecaster.h"
#include "nn/dropout.h"
#include "nn/layer_norm.h"
#include "nn/linear.h"

namespace lipformer {

struct TsMixerConfig {
  int64_t num_blocks = 2;
  int64_t hidden_dim = 64;  // feature-mixing MLP width
  float dropout = 0.1f;
};

// TSMixer (Chen et al., 2023): alternating time-mixing MLPs (shared linear
// T -> T applied per channel) and feature-mixing MLPs (c -> hidden -> c
// applied per time step), each with residual connection and LayerNorm,
// followed by a temporal projection T -> L.
class TsMixer : public Forecaster {
 public:
  TsMixer(const ForecasterDims& dims, const TsMixerConfig& config,
          uint64_t seed = 1);

  Variable Forward(const Batch& batch) override;

  std::string name() const override { return "TSMixer"; }
  int64_t input_len() const override { return dims_.input_len; }
  int64_t pred_len() const override { return dims_.pred_len; }
  int64_t channels() const override { return dims_.channels; }

 private:
  struct Block {
    std::unique_ptr<Linear> time_mix;
    std::unique_ptr<LayerNorm> time_norm;
    std::unique_ptr<Linear> feat_up;
    std::unique_ptr<Linear> feat_down;
    std::unique_ptr<LayerNorm> feat_norm;
    std::unique_ptr<Dropout> dropout;
  };

  ForecasterDims dims_;
  TsMixerConfig config_;
  std::vector<Block> blocks_;
  std::unique_ptr<Linear> head_;  // T -> L
};

}  // namespace lipformer

#endif  // LIPFORMER_MODELS_TSMIXER_H_
