#ifndef LIPFORMER_MODELS_PATCHTST_H_
#define LIPFORMER_MODELS_PATCHTST_H_

#include <memory>
#include <string>
#include <vector>

#include "models/encoder_layer.h"
#include "models/forecaster.h"
#include "nn/positional_encoding.h"

namespace lipformer {

struct PatchTstConfig {
  int64_t patch_len = 16;
  int64_t model_dim = 64;
  int64_t num_heads = 4;
  int64_t num_layers = 2;
  int64_t ffn_dim = 128;
  float dropout = 0.1f;
};

// PatchTST (Nie et al., ICLR 2023), the strongest Transformer baseline in
// the paper: channel-independent patching, linear patch embedding with
// positional encoding, a stack of full Transformer encoder layers (LN +
// FFN, everything LiPFormer removes), and a flatten head. Instance
// normalization (subtract last value) as in the lineage.
class PatchTst : public Forecaster {
 public:
  PatchTst(const ForecasterDims& dims, const PatchTstConfig& config,
           uint64_t seed = 1);

  Variable Forward(const Batch& batch) override;

  std::string name() const override { return "PatchTST"; }
  int64_t input_len() const override { return dims_.input_len; }
  int64_t pred_len() const override { return dims_.pred_len; }
  int64_t channels() const override { return dims_.channels; }

 private:
  ForecasterDims dims_;
  PatchTstConfig config_;
  int64_t num_patches_;
  std::unique_ptr<Linear> patch_embed_;
  std::unique_ptr<PositionalEncoding> pos_encoding_;
  std::vector<std::unique_ptr<TransformerEncoderLayer>> layers_;
  std::unique_ptr<Linear> head_;
};

}  // namespace lipformer

#endif  // LIPFORMER_MODELS_PATCHTST_H_
