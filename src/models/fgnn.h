#ifndef LIPFORMER_MODELS_FGNN_H_
#define LIPFORMER_MODELS_FGNN_H_

#include <memory>
#include <string>
#include <vector>

#include "models/forecaster.h"
#include "nn/linear.h"

namespace lipformer {

struct FgnnConfig {
  // Kept frequencies of the truncated real DFT (<= T/2 + 1).
  int64_t num_frequencies = 24;
  int64_t num_layers = 2;
};

// FourierGNN (Yi et al., NeurIPS 2023), simplified: the multivariate window
// is moved to the frequency domain with an explicit (differentiable) DFT
// matrix, a stack of Fourier Graph Operators -- complex linear maps mixing
// channels within each frequency, realized as pairs of real matmuls --
// transforms the spectrum, and the inverse DFT plus a temporal projection
// produce the forecast. The hypervariate-graph view collapses to this
// frequency-domain channel mixing; see DESIGN.md.
class Fgnn : public Forecaster {
 public:
  Fgnn(const ForecasterDims& dims, const FgnnConfig& config,
       uint64_t seed = 1);

  Variable Forward(const Batch& batch) override;

  std::string name() const override { return "FGNN"; }
  int64_t input_len() const override { return dims_.input_len; }
  int64_t pred_len() const override { return dims_.pred_len; }
  int64_t channels() const override { return dims_.channels; }

 private:
  ForecasterDims dims_;
  FgnnConfig config_;
  Tensor dft_cos_;   // [T, k]
  Tensor dft_sin_;   // [T, k]
  Tensor idft_cos_;  // [k, T]
  Tensor idft_sin_;  // [k, T]
  // Complex channel-mixing weights per layer (shared across frequencies).
  std::vector<std::unique_ptr<Linear>> mix_real_;
  std::vector<std::unique_ptr<Linear>> mix_imag_;
  std::unique_ptr<Linear> head_;  // T -> L per channel
};

}  // namespace lipformer

#endif  // LIPFORMER_MODELS_FGNN_H_
