#include "models/decomposition.h"

namespace lipformer {

Tensor MovingAverageMatrix(int64_t t, int64_t kernel) {
  LIPF_CHECK_GT(kernel, 0);
  Tensor w(Shape{t, t});
  float* p = w.data();
  const int64_t half_lo = (kernel - 1) / 2;
  const int64_t half_hi = kernel / 2;
  const float inv_k = 1.0f / static_cast<float>(kernel);
  for (int64_t out = 0; out < t; ++out) {
    for (int64_t off = -half_lo; off <= half_hi; ++off) {
      // Replicate padding: clamp source index to [0, t).
      int64_t src = out + off;
      if (src < 0) src = 0;
      if (src >= t) src = t - 1;
      p[src * t + out] += inv_k;
    }
  }
  return w;
}

std::pair<Variable, Variable> DecomposeSeries(const Variable& x,
                                              const Tensor& avg_matrix) {
  LIPF_CHECK_EQ(x.dim(), 2);
  LIPF_CHECK_EQ(x.size(1), avg_matrix.size(0));
  Variable trend = MatMul(x, Variable(avg_matrix));
  Variable seasonal = Sub(x, trend);
  return {seasonal, trend};
}

}  // namespace lipformer
