#ifndef LIPFORMER_MODELS_TIMEMIXER_H_
#define LIPFORMER_MODELS_TIMEMIXER_H_

#include <memory>
#include <string>
#include <vector>

#include "models/decomposition.h"
#include "models/forecaster.h"
#include "nn/linear.h"

namespace lipformer {

struct TimeMixerConfig {
  // Successive 2x average-pool downsampling levels (level 0 = full
  // resolution). 3 levels => lengths T, T/2, T/4.
  int64_t num_scales = 3;
  int64_t moving_avg_kernel = 25;
};

// TimeMixer (Wang et al., 2024), simplified: multi-resolution views of each
// channel are decomposed into seasonal/trend parts; seasonal information is
// mixed bottom-up (fine -> coarse) and trend information top-down
// (coarse -> fine) through linear maps -- the Past-Decomposable-Mixing idea
// -- and a per-scale future multipredictor (Linear T_s -> L) ensembles the
// final forecast. The full model's channel-mixing and cross-resolution
// heads are folded into these linear stages; see DESIGN.md.
class TimeMixer : public Forecaster {
 public:
  TimeMixer(const ForecasterDims& dims, const TimeMixerConfig& config,
            uint64_t seed = 1);

  Variable Forward(const Batch& batch) override;

  std::string name() const override { return "TimeMixer"; }
  int64_t input_len() const override { return dims_.input_len; }
  int64_t pred_len() const override { return dims_.pred_len; }
  int64_t channels() const override { return dims_.channels; }

 private:
  ForecasterDims dims_;
  TimeMixerConfig config_;
  std::vector<int64_t> scale_lens_;
  std::vector<Tensor> avg_matrices_;
  // season_mix_[i]: T_i -> T_{i+1} (bottom-up); trend_mix_[i]: T_{i+1} ->
  // T_i (top-down).
  std::vector<std::unique_ptr<Linear>> season_mix_;
  std::vector<std::unique_ptr<Linear>> trend_mix_;
  std::vector<std::unique_ptr<Linear>> predictors_;  // T_i -> L
};

}  // namespace lipformer

#endif  // LIPFORMER_MODELS_TIMEMIXER_H_
