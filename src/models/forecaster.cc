#include "models/forecaster.h"

// Interface-only translation unit (keeps one vtable anchor for Forecaster).

namespace lipformer {}  // namespace lipformer
