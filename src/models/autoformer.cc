#include "models/autoformer.h"

#include <algorithm>
#include <cmath>
#include <complex>

#include "core/instance_norm.h"
#include "tensor/fft.h"
#include "tensor/ops.h"

namespace lipformer {

namespace {

// Cross-correlation scores between q and k along time for every lag:
// mean over feature channels of ifft(fft(q) * conj(fft(k))).
// q, k: [b, s, d] -> [b, s] (lag scores).
Tensor LagScores(const Tensor& q, const Tensor& k) {
  const int64_t b = q.size(0);
  const int64_t s = q.size(1);
  const int64_t d = q.size(2);
  const int64_t padded = NextPowerOfTwo(s);
  Tensor scores(Shape{b, s});
  std::vector<std::complex<float>> fq(static_cast<size_t>(padded));
  std::vector<std::complex<float>> fk(static_cast<size_t>(padded));
  const float* pq = q.data();
  const float* pk = k.data();
  float* po = scores.data();
  for (int64_t bi = 0; bi < b; ++bi) {
    for (int64_t ci = 0; ci < d; ++ci) {
      std::fill(fq.begin(), fq.end(), std::complex<float>(0, 0));
      std::fill(fk.begin(), fk.end(), std::complex<float>(0, 0));
      for (int64_t t = 0; t < s; ++t) {
        fq[static_cast<size_t>(t)] = pq[(bi * s + t) * d + ci];
        fk[static_cast<size_t>(t)] = pk[(bi * s + t) * d + ci];
      }
      Fft(fq, false);
      Fft(fk, false);
      for (int64_t f = 0; f < padded; ++f) {
        fq[static_cast<size_t>(f)] *= std::conj(fk[static_cast<size_t>(f)]);
      }
      Fft(fq, true);
      for (int64_t tau = 0; tau < s; ++tau) {
        po[bi * s + tau] += fq[static_cast<size_t>(tau)].real() /
                            static_cast<float>(d * s);
      }
    }
  }
  return scores;
}

// Circularly rolls x [b, s, d] along time by `lag` (delay aggregation).
Variable Roll(const Variable& x, int64_t lag) {
  const int64_t s = x.size(1);
  std::vector<int64_t> idx(static_cast<size_t>(s));
  for (int64_t t = 0; t < s; ++t) {
    idx[static_cast<size_t>(t)] = (t + lag) % s;
  }
  return IndexSelect(x, 1, idx);
}

}  // namespace

AutoCorrelationAttention::AutoCorrelationAttention(int64_t model_dim,
                                                   Rng& rng, float factor)
    : model_dim_(model_dim), factor_(factor) {
  wq_ = std::make_unique<Linear>(model_dim, model_dim, rng);
  wk_ = std::make_unique<Linear>(model_dim, model_dim, rng);
  wv_ = std::make_unique<Linear>(model_dim, model_dim, rng);
  wo_ = std::make_unique<Linear>(model_dim, model_dim, rng);
  RegisterModule("wq", wq_.get());
  RegisterModule("wk", wk_.get());
  RegisterModule("wv", wv_.get());
  RegisterModule("wo", wo_.get());
}

Variable AutoCorrelationAttention::Forward(const Variable& x) const {
  LIPF_CHECK_EQ(x.dim(), 3);
  const int64_t b = x.size(0);
  const int64_t s = x.size(1);
  Variable q = wq_->Forward(x);
  Variable k = wk_->Forward(x);
  Variable v = wv_->Forward(x);

  Tensor scores = LagScores(q.value(), k.value());  // [b, s]
  const int64_t topk = std::min<int64_t>(
      s, std::max<int64_t>(
             1, static_cast<int64_t>(
                    factor_ * std::log(static_cast<float>(s)) + 1.0f)));

  // Select the top-k lags from the batch-mean score (shared lags keep the
  // aggregation batched; the per-batch weights below stay individual).
  Tensor mean_scores = Mean(scores, 0);  // [s]
  std::vector<std::pair<float, int64_t>> ranked;
  ranked.reserve(static_cast<size_t>(s));
  for (int64_t tau = 0; tau < s; ++tau) {
    ranked.emplace_back(mean_scores.data()[tau], tau);
  }
  std::partial_sort(ranked.begin(), ranked.begin() + topk, ranked.end(),
                    [](const auto& a, const auto& c) {
                      return a.first > c.first;
                    });

  // Per-batch softmax weights over the selected lags.
  Tensor lag_logits(Shape{b, topk});
  for (int64_t bi = 0; bi < b; ++bi) {
    for (int64_t i = 0; i < topk; ++i) {
      lag_logits.data()[bi * topk + i] =
          scores.data()[bi * s + ranked[static_cast<size_t>(i)].second];
    }
  }
  Tensor weights = Softmax(lag_logits, 1);  // constant [b, topk]

  Variable out;
  for (int64_t i = 0; i < topk; ++i) {
    const int64_t lag = ranked[static_cast<size_t>(i)].second;
    Tensor w = Slice(weights, 1, i, i + 1).Reshape(Shape{b, 1, 1});
    Variable term = MulConst(Roll(v, lag), w);
    out = i == 0 ? term : Add(out, term);
  }
  return wo_->Forward(out);
}

Autoformer::Autoformer(const ForecasterDims& dims,
                       const AutoformerConfig& config, uint64_t seed)
    : dims_(dims),
      config_(config),
      avg_matrix_(MovingAverageMatrix(dims.input_len,
                                      config.moving_avg_kernel)) {
  Rng rng(seed);
  trend_proj_ = std::make_unique<Linear>(dims.input_len, dims.pred_len, rng);
  input_embed_ = std::make_unique<Linear>(dims.channels, config.model_dim,
                                          rng);
  RegisterModule("trend_proj", trend_proj_.get());
  RegisterModule("input_embed", input_embed_.get());
  for (int64_t i = 0; i < config.num_layers; ++i) {
    Layer layer;
    layer.attention = std::make_unique<AutoCorrelationAttention>(
        config.model_dim, rng, config.autocorrelation_factor);
    layer.ffn_up = std::make_unique<Linear>(config.model_dim, config.ffn_dim,
                                            rng);
    layer.ffn_down = std::make_unique<Linear>(config.ffn_dim,
                                              config.model_dim, rng);
    layer.norm = std::make_unique<LayerNorm>(config.model_dim, rng);
    const std::string prefix = "layer" + std::to_string(i);
    RegisterModule(prefix + ".attention", layer.attention.get());
    RegisterModule(prefix + ".ffn_up", layer.ffn_up.get());
    RegisterModule(prefix + ".ffn_down", layer.ffn_down.get());
    RegisterModule(prefix + ".norm", layer.norm.get());
    layers_.push_back(std::move(layer));
  }
  channel_head_ = std::make_unique<Linear>(config.model_dim, dims.channels,
                                           rng);
  time_head_ = std::make_unique<Linear>(dims.input_len, dims.pred_len, rng);
  RegisterModule("channel_head", channel_head_.get());
  RegisterModule("time_head", time_head_.get());
}

Variable Autoformer::Forward(const Batch& batch) {
  const int64_t b = batch.x.size(0);
  const int64_t t = batch.x.size(1);
  const int64_t c = batch.x.size(2);
  LIPF_CHECK_EQ(t, dims_.input_len);
  LIPF_CHECK_EQ(c, dims_.channels);

  Variable x(batch.x);
  auto [normalized, norm_state] = InstanceNormalize(x);

  // Series decomposition: trend extrapolated linearly per channel.
  Variable flat = Reshape(Permute(normalized, {0, 2, 1}), Shape{b * c, t});
  auto [seasonal_flat, trend_flat] = DecomposeSeries(flat, avg_matrix_);
  Variable trend_pred = Permute(
      Reshape(trend_proj_->Forward(trend_flat), Shape{b, c, dims_.pred_len}),
      {0, 2, 1});  // [b, L, c]

  // Seasonal branch: embedding + AutoCorrelation encoder.
  Variable seasonal =
      Permute(Reshape(seasonal_flat, Shape{b, c, t}), {0, 2, 1});
  Variable tokens = input_embed_->Forward(seasonal);  // [b, T, d]
  for (const Layer& layer : layers_) {
    Variable attended = layer.attention->Forward(tokens);
    Variable h = Add(tokens, attended);
    Variable ffn =
        layer.ffn_down->Forward(layer.ffn_up->Forward(h, Activation::kGelu));
    tokens = layer.norm->Forward(Add(h, ffn));
  }
  Variable per_step = channel_head_->Forward(tokens);  // [b, T, c]
  Variable seasonal_pred = Permute(
      time_head_->Forward(Permute(per_step, {0, 2, 1})), {0, 2, 1});

  Variable out = Add(seasonal_pred, trend_pred);
  return InstanceDenormalize(out, norm_state);
}

}  // namespace lipformer
