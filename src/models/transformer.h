#ifndef LIPFORMER_MODELS_TRANSFORMER_H_
#define LIPFORMER_MODELS_TRANSFORMER_H_

#include <memory>
#include <string>
#include <vector>

#include "models/encoder_layer.h"
#include "models/forecaster.h"
#include "nn/positional_encoding.h"

namespace lipformer {

struct TransformerConfig {
  int64_t model_dim = 64;
  int64_t num_heads = 4;
  int64_t num_layers = 2;
  int64_t ffn_dim = 256;
  float dropout = 0.1f;
};

// Vanilla point-wise Transformer forecaster: every time step is a token
// (O(T^2) attention -- the cost LiPFormer's patching attacks), sinusoidal
// positional encoding, full encoder stack, mean-pooled representation
// projected to the whole horizon. This is the "Transformer" row of
// Tables VII and XII.
class VanillaTransformer : public Forecaster {
 public:
  VanillaTransformer(const ForecasterDims& dims,
                     const TransformerConfig& config, uint64_t seed = 1);

  Variable Forward(const Batch& batch) override;

  std::string name() const override { return "Transformer"; }
  int64_t input_len() const override { return dims_.input_len; }
  int64_t pred_len() const override { return dims_.pred_len; }
  int64_t channels() const override { return dims_.channels; }

 private:
  ForecasterDims dims_;
  TransformerConfig config_;
  std::unique_ptr<Linear> input_embed_;  // c -> d per time step
  std::unique_ptr<PositionalEncoding> pos_encoding_;
  std::vector<std::unique_ptr<TransformerEncoderLayer>> layers_;
  std::unique_ptr<Linear> head_;  // d -> L*c
};

}  // namespace lipformer

#endif  // LIPFORMER_MODELS_TRANSFORMER_H_
