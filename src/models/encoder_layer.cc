#include "models/encoder_layer.h"

namespace lipformer {

TransformerEncoderLayer::TransformerEncoderLayer(int64_t model_dim,
                                                 int64_t num_heads,
                                                 int64_t ffn_dim, Rng& rng,
                                                 float dropout) {
  attention_ = std::make_unique<MultiHeadSelfAttention>(model_dim, num_heads,
                                                        rng);
  norm1_ = std::make_unique<LayerNorm>(model_dim, rng);
  norm2_ = std::make_unique<LayerNorm>(model_dim, rng);
  ffn_up_ = std::make_unique<Linear>(model_dim, ffn_dim, rng);
  ffn_down_ = std::make_unique<Linear>(ffn_dim, model_dim, rng);
  RegisterModule("attention", attention_.get());
  RegisterModule("norm1", norm1_.get());
  RegisterModule("norm2", norm2_.get());
  RegisterModule("ffn_up", ffn_up_.get());
  RegisterModule("ffn_down", ffn_down_.get());
  if (dropout > 0.0f) {
    dropout_ = std::make_unique<Dropout>(dropout, rng);
    RegisterModule("dropout", dropout_.get());
  }
}

Variable TransformerEncoderLayer::Forward(const Variable& x) const {
  Variable attended = attention_->Forward(x);
  if (dropout_) attended = dropout_->Forward(attended);
  Variable h = norm1_->Forward(Add(x, attended));
  Variable ffn = ffn_down_->Forward(ffn_up_->Forward(h, Activation::kGelu));
  if (dropout_) ffn = dropout_->Forward(ffn);
  return norm2_->Forward(Add(h, ffn));
}

}  // namespace lipformer
