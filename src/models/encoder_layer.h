#ifndef LIPFORMER_MODELS_ENCODER_LAYER_H_
#define LIPFORMER_MODELS_ENCODER_LAYER_H_

#include <memory>

#include "nn/attention.h"
#include "nn/dropout.h"
#include "nn/layer_norm.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace lipformer {

// Standard post-norm Transformer encoder layer (Vaswani et al.):
//   x = LN(x + MHSA(x)); x = LN(x + FFN(x)).
// Deliberately heavyweight -- this is what the baselines (Transformer,
// PatchTST, iTransformer, Informer) are built from and what LiPFormer's
// lightweight design is measured against.
class TransformerEncoderLayer : public Module {
 public:
  TransformerEncoderLayer(int64_t model_dim, int64_t num_heads,
                          int64_t ffn_dim, Rng& rng, float dropout = 0.1f);

  Variable Forward(const Variable& x) const;

 private:
  std::unique_ptr<MultiHeadSelfAttention> attention_;
  std::unique_ptr<LayerNorm> norm1_;
  std::unique_ptr<LayerNorm> norm2_;
  std::unique_ptr<Linear> ffn_up_;
  std::unique_ptr<Linear> ffn_down_;
  std::unique_ptr<Dropout> dropout_;
};

}  // namespace lipformer

#endif  // LIPFORMER_MODELS_ENCODER_LAYER_H_
