#include "models/itransformer.h"

#include "core/instance_norm.h"

namespace lipformer {

ITransformer::ITransformer(const ForecasterDims& dims,
                           const ITransformerConfig& config, uint64_t seed)
    : dims_(dims), config_(config) {
  Rng rng(seed);
  variate_embed_ = std::make_unique<Linear>(dims.input_len, config.model_dim,
                                            rng);
  RegisterModule("variate_embed", variate_embed_.get());
  for (int64_t i = 0; i < config.num_layers; ++i) {
    layers_.push_back(std::make_unique<TransformerEncoderLayer>(
        config.model_dim, config.num_heads, config.ffn_dim, rng,
        config.dropout));
    RegisterModule("layer" + std::to_string(i), layers_.back().get());
  }
  head_ = std::make_unique<Linear>(config.model_dim, dims.pred_len, rng);
  RegisterModule("head", head_.get());
}

Variable ITransformer::Forward(const Batch& batch) {
  LIPF_CHECK_EQ(batch.x.size(1), dims_.input_len);
  LIPF_CHECK_EQ(batch.x.size(2), dims_.channels);

  Variable x(batch.x);
  auto [normalized, norm_state] = InstanceNormalize(x);

  // Variates as tokens: [b, T, c] -> [b, c, T] -> [b, c, d].
  Variable variates = Permute(normalized, {0, 2, 1});
  Variable tokens = variate_embed_->Forward(variates);
  for (const auto& layer : layers_) tokens = layer->Forward(tokens);

  Variable y = head_->Forward(tokens);          // [b, c, L]
  Variable out = Permute(y, {0, 2, 1});         // [b, L, c]
  return InstanceDenormalize(out, norm_state);
}

}  // namespace lipformer
