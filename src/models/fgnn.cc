#include "models/fgnn.h"

#include "core/instance_norm.h"
#include "tensor/fft.h"

namespace lipformer {

Fgnn::Fgnn(const ForecasterDims& dims, const FgnnConfig& config,
           uint64_t seed)
    : dims_(dims), config_(config) {
  const int64_t max_freq = dims.input_len / 2 + 1;
  if (config_.num_frequencies > max_freq) {
    config_.num_frequencies = max_freq;
  }
  DftBasis(dims.input_len, config_.num_frequencies, &dft_cos_, &dft_sin_);
  InverseDftBasis(dims.input_len, config_.num_frequencies, &idft_cos_,
                  &idft_sin_);
  Rng rng(seed);
  for (int64_t i = 0; i < config_.num_layers; ++i) {
    mix_real_.push_back(std::make_unique<Linear>(dims.channels,
                                                 dims.channels, rng));
    mix_imag_.push_back(std::make_unique<Linear>(dims.channels,
                                                 dims.channels, rng));
    RegisterModule("mix_real" + std::to_string(i), mix_real_.back().get());
    RegisterModule("mix_imag" + std::to_string(i), mix_imag_.back().get());
  }
  head_ = std::make_unique<Linear>(dims.input_len, dims.pred_len, rng);
  RegisterModule("head", head_.get());
}

Variable Fgnn::Forward(const Batch& batch) {
  LIPF_CHECK_EQ(batch.x.size(1), dims_.input_len);
  LIPF_CHECK_EQ(batch.x.size(2), dims_.channels);

  Variable x(batch.x);
  auto [normalized, norm_state] = InstanceNormalize(x);

  // Truncated real DFT over time for every channel: [b, c, T] @ [T, k].
  Variable rows = Permute(normalized, {0, 2, 1});
  Variable real = MatMul(rows, Variable(dft_cos_));  // [b, c, k]
  Variable imag = MatMul(rows, Variable(dft_sin_));

  // Fourier Graph Operators: complex channel mixing per frequency.
  Variable re = Permute(real, {0, 2, 1});  // [b, k, c]
  Variable im = Permute(imag, {0, 2, 1});
  for (int64_t i = 0; i < config_.num_layers; ++i) {
    Variable new_re = Sub(mix_real_[static_cast<size_t>(i)]->Forward(re),
                          mix_imag_[static_cast<size_t>(i)]->Forward(im));
    Variable new_im = Add(mix_real_[static_cast<size_t>(i)]->Forward(im),
                          mix_imag_[static_cast<size_t>(i)]->Forward(re));
    re = Tanh(new_re);
    im = Tanh(new_im);
  }

  // Back to time domain and project to the horizon per channel.
  Variable re_rows = Permute(re, {0, 2, 1});  // [b, c, k]
  Variable im_rows = Permute(im, {0, 2, 1});
  Variable time = Add(MatMul(re_rows, Variable(idft_cos_)),
                      MatMul(im_rows, Variable(idft_sin_)));  // [b, c, T]
  Variable y = head_->Forward(time);  // [b, c, L]
  Variable out = Permute(y, {0, 2, 1});
  return InstanceDenormalize(out, norm_state);
}

}  // namespace lipformer
