#ifndef LIPFORMER_MODELS_INFORMER_H_
#define LIPFORMER_MODELS_INFORMER_H_

#include <memory>
#include <string>
#include <vector>

#include "models/forecaster.h"
#include "nn/dropout.h"
#include "nn/layer_norm.h"
#include "nn/linear.h"
#include "nn/positional_encoding.h"

namespace lipformer {

// ProbSparse self-attention (Zhou et al., AAAI 2021), behaviorally
// simplified: the sparsity measure M(q) = max_j <q,k_j> - mean_j <q,k_j>
// selects the top-u "active" queries (u = factor * ln S); active queries
// get full softmax attention, lazy queries fall back to mean(V), exactly as
// in Informer. (We compute the full score matrix rather than sampling keys,
// so the behaviour -- not the asymptotic cost -- is reproduced; see
// DESIGN.md.)
class ProbSparseSelfAttention : public Module {
 public:
  ProbSparseSelfAttention(int64_t model_dim, Rng& rng,
                          float factor = 5.0f);

  Variable Forward(const Variable& x) const;

 private:
  int64_t model_dim_;
  float factor_;
  std::unique_ptr<Linear> wq_;
  std::unique_ptr<Linear> wk_;
  std::unique_ptr<Linear> wv_;
  std::unique_ptr<Linear> wo_;
};

struct InformerConfig {
  int64_t model_dim = 64;
  int64_t num_layers = 2;
  int64_t ffn_dim = 256;
  float dropout = 0.1f;
  float prob_sparse_factor = 5.0f;
};

// Informer forecaster: point-wise embedding + positional encoding, encoder
// stack with ProbSparse attention, pooled linear head. Used in Table XII
// (covariate-encoder transplantation).
class Informer : public Forecaster {
 public:
  Informer(const ForecasterDims& dims, const InformerConfig& config,
           uint64_t seed = 1);

  Variable Forward(const Batch& batch) override;

  std::string name() const override { return "Informer"; }
  int64_t input_len() const override { return dims_.input_len; }
  int64_t pred_len() const override { return dims_.pred_len; }
  int64_t channels() const override { return dims_.channels; }

 private:
  struct Layer {
    std::unique_ptr<ProbSparseSelfAttention> attention;
    std::unique_ptr<LayerNorm> norm1;
    std::unique_ptr<Linear> ffn_up;
    std::unique_ptr<Linear> ffn_down;
    std::unique_ptr<LayerNorm> norm2;
    std::unique_ptr<Dropout> dropout;
  };

  ForecasterDims dims_;
  InformerConfig config_;
  std::unique_ptr<Linear> input_embed_;
  std::unique_ptr<PositionalEncoding> pos_encoding_;
  std::vector<Layer> layers_;
  std::unique_ptr<Linear> head_;
};

}  // namespace lipformer

#endif  // LIPFORMER_MODELS_INFORMER_H_
