#ifndef LIPFORMER_MODELS_DECOMPOSITION_H_
#define LIPFORMER_MODELS_DECOMPOSITION_H_

#include <utility>

#include "autograd/ops.h"

// Trend/seasonal series decomposition via moving average, the building
// block of DLinear, Autoformer and TimeMixer. The smoothing is expressed as
// a constant [T, T] row-stochastic matrix (replicate padding at the edges),
// so it is differentiable through a single MatMul.

namespace lipformer {

// W[s, t] = weight of x_s in trend_t; apply as x [B, T] @ W -> trend [B, T].
Tensor MovingAverageMatrix(int64_t t, int64_t kernel);

// x: [B, T] -> {seasonal, trend} with trend = moving average, seasonal =
// x - trend.
std::pair<Variable, Variable> DecomposeSeries(const Variable& x,
                                              const Tensor& avg_matrix);

}  // namespace lipformer

#endif  // LIPFORMER_MODELS_DECOMPOSITION_H_
