#include "models/factory.h"

#include "core/lipformer.h"
#include "models/autoformer.h"
#include "models/dlinear.h"
#include "models/fgnn.h"
#include "models/informer.h"
#include "models/itransformer.h"
#include "models/patchtst.h"
#include "models/timemixer.h"
#include "models/transformer.h"
#include "models/tsmixer.h"
#include "models/tide.h"

namespace lipformer {

namespace {

// Largest divisor of `t` not exceeding `preferred`, so patch-based models
// accept any input length.
int64_t FitPatchLen(int64_t t, int64_t preferred) {
  for (int64_t pl = std::min(preferred, t); pl >= 1; --pl) {
    if (t % pl == 0) return pl;
  }
  return 1;
}

}  // namespace

std::vector<std::string> RegisteredModelNames() {
  return {"lipformer", "dlinear",    "patchtst",  "transformer",
          "itransformer", "tsmixer", "timemixer", "tide",
          "informer",  "autoformer", "fgnn"};
}

std::unique_ptr<Forecaster> CreateModel(const std::string& name,
                                        const ForecasterDims& dims,
                                        const ModelOptions& options) {
  if (name == "lipformer") {
    LiPFormerConfig config;
    config.input_len = dims.input_len;
    config.pred_len = dims.pred_len;
    config.channels = dims.channels;
    config.patch_len = FitPatchLen(dims.input_len, options.patch_len);
    config.hidden_dim = options.hidden_dim;
    config.num_heads = options.num_heads;
    config.dropout = options.dropout;
    config.seed = options.seed;
    return std::make_unique<LiPFormer>(config);
  }
  if (name == "dlinear") {
    return std::make_unique<DLinear>(dims, options.seed);
  }
  if (name == "patchtst") {
    PatchTstConfig config;
    config.patch_len = FitPatchLen(dims.input_len, 16);
    config.model_dim = options.hidden_dim;
    config.num_heads = options.num_heads;
    config.num_layers = options.num_layers;
    config.ffn_dim = 2 * options.hidden_dim;
    config.dropout = options.dropout;
    return std::make_unique<PatchTst>(dims, config, options.seed);
  }
  if (name == "transformer") {
    TransformerConfig config;
    config.model_dim = options.hidden_dim;
    config.num_heads = options.num_heads;
    config.num_layers = options.num_layers;
    config.ffn_dim = 4 * options.hidden_dim;
    config.dropout = options.dropout;
    return std::make_unique<VanillaTransformer>(dims, config, options.seed);
  }
  if (name == "itransformer") {
    ITransformerConfig config;
    config.model_dim = options.hidden_dim;
    config.num_heads = options.num_heads;
    config.num_layers = options.num_layers;
    config.ffn_dim = 2 * options.hidden_dim;
    config.dropout = options.dropout;
    return std::make_unique<ITransformer>(dims, config, options.seed);
  }
  if (name == "tsmixer") {
    TsMixerConfig config;
    config.num_blocks = options.num_layers;
    config.hidden_dim = options.hidden_dim;
    config.dropout = options.dropout;
    return std::make_unique<TsMixer>(dims, config, options.seed);
  }
  if (name == "timemixer") {
    TimeMixerConfig config;
    // Scales require halving; shrink until the lengths divide.
    config.num_scales = dims.input_len % 4 == 0 ? 3 : 2;
    return std::make_unique<TimeMixer>(dims, config, options.seed);
  }
  if (name == "tide") {
    TideConfig config;
    config.hidden_dim = options.hidden_dim;
    config.encoder_dim = options.hidden_dim;
    config.dropout = options.dropout;
    return std::make_unique<Tide>(dims, options.num_covariates, config,
                                  options.seed);
  }
  if (name == "informer") {
    InformerConfig config;
    config.model_dim = options.hidden_dim;
    config.num_layers = options.num_layers;
    config.ffn_dim = 4 * options.hidden_dim;
    config.dropout = options.dropout;
    return std::make_unique<Informer>(dims, config, options.seed);
  }
  if (name == "autoformer") {
    AutoformerConfig config;
    config.model_dim = options.hidden_dim;
    config.num_layers = 1;
    config.ffn_dim = 4 * options.hidden_dim;
    return std::make_unique<Autoformer>(dims, config, options.seed);
  }
  if (name == "fgnn") {
    FgnnConfig config;
    config.num_layers = options.num_layers;
    return std::make_unique<Fgnn>(dims, config, options.seed);
  }
  LIPF_CHECK(false) << "unknown model: " << name;
  return nullptr;
}

}  // namespace lipformer
