#include "models/dlinear.h"

namespace lipformer {

DLinear::DLinear(const ForecasterDims& dims, uint64_t seed,
                 int64_t moving_avg_kernel)
    : dims_(dims),
      avg_matrix_(MovingAverageMatrix(dims.input_len, moving_avg_kernel)) {
  Rng rng(seed);
  seasonal_proj_ = std::make_unique<Linear>(dims.input_len, dims.pred_len,
                                            rng);
  trend_proj_ = std::make_unique<Linear>(dims.input_len, dims.pred_len, rng);
  RegisterModule("seasonal_proj", seasonal_proj_.get());
  RegisterModule("trend_proj", trend_proj_.get());
}

Variable DLinear::Forward(const Batch& batch) {
  const int64_t b = batch.x.size(0);
  const int64_t t = batch.x.size(1);
  const int64_t c = batch.x.size(2);
  LIPF_CHECK_EQ(t, dims_.input_len);
  LIPF_CHECK_EQ(c, dims_.channels);

  // Channel independence: [b, T, c] -> [b*c, T].
  Variable x(batch.x);
  Variable flat = Reshape(Permute(x, {0, 2, 1}), Shape{b * c, t});

  auto [seasonal, trend] = DecomposeSeries(flat, avg_matrix_);
  Variable y = Add(seasonal_proj_->Forward(seasonal),
                   trend_proj_->Forward(trend));  // [b*c, L]

  return Permute(Reshape(y, Shape{b, c, dims_.pred_len}), {0, 2, 1});
}

}  // namespace lipformer
