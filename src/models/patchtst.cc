#include "models/patchtst.h"

#include "core/instance_norm.h"
#include "core/patching.h"

namespace lipformer {

PatchTst::PatchTst(const ForecasterDims& dims, const PatchTstConfig& config,
                   uint64_t seed)
    : dims_(dims), config_(config) {
  LIPF_CHECK_EQ(dims.input_len % config.patch_len, 0)
      << "patch length must divide input length";
  num_patches_ = dims.input_len / config.patch_len;
  Rng rng(seed);
  patch_embed_ = std::make_unique<Linear>(config.patch_len, config.model_dim,
                                          rng);
  RegisterModule("patch_embed", patch_embed_.get());
  pos_encoding_ = std::make_unique<PositionalEncoding>(num_patches_,
                                                       config.model_dim);
  for (int64_t i = 0; i < config.num_layers; ++i) {
    layers_.push_back(std::make_unique<TransformerEncoderLayer>(
        config.model_dim, config.num_heads, config.ffn_dim, rng,
        config.dropout));
    RegisterModule("layer" + std::to_string(i), layers_.back().get());
  }
  head_ = std::make_unique<Linear>(num_patches_ * config.model_dim,
                                   dims.pred_len, rng);
  RegisterModule("head", head_.get());
}

Variable PatchTst::Forward(const Batch& batch) {
  const int64_t b = batch.x.size(0);
  const int64_t t = batch.x.size(1);
  const int64_t c = batch.x.size(2);
  LIPF_CHECK_EQ(t, dims_.input_len);
  LIPF_CHECK_EQ(c, dims_.channels);

  Variable x(batch.x);
  auto [normalized, norm_state] = InstanceNormalize(x);
  Variable flat = Reshape(Permute(normalized, {0, 2, 1}), Shape{b * c, t});

  Variable patches = MakePatches(flat, config_.patch_len);  // [B, n, pl]
  Variable tokens = patch_embed_->Forward(patches);         // [B, n, d]
  tokens = pos_encoding_->Forward(tokens);
  for (const auto& layer : layers_) tokens = layer->Forward(tokens);

  Variable flat_tokens =
      Reshape(tokens, Shape{b * c, num_patches_ * config_.model_dim});
  Variable y = head_->Forward(flat_tokens);  // [B, L]

  Variable out = Permute(Reshape(y, Shape{b, c, dims_.pred_len}), {0, 2, 1});
  return InstanceDenormalize(out, norm_state);
}

}  // namespace lipformer
