#ifndef LIPFORMER_MODELS_FACTORY_H_
#define LIPFORMER_MODELS_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "models/forecaster.h"

namespace lipformer {

// Hyperparameters shared by the factory-built models; individual models
// read the fields they need. The defaults mirror the scaled-down bench
// configuration (hd 64, 2 layers) used throughout EXPERIMENTS.md.
struct ModelOptions {
  int64_t patch_len = 48;
  int64_t hidden_dim = 64;
  int64_t num_heads = 4;
  int64_t num_layers = 2;
  float dropout = 0.1f;
  uint64_t seed = 1;
  // Number of future-known numeric covariates (TiDE uses these).
  int64_t num_covariates = 0;
};

// Known names: lipformer, dlinear, patchtst, transformer, itransformer,
// tsmixer, timemixer, tide, informer, autoformer, fgnn.
std::vector<std::string> RegisteredModelNames();

// CHECK-fails on unknown names. The returned LiPFormer has no covariate
// encoder attached; use the core pipeline for weak-data enriching.
std::unique_ptr<Forecaster> CreateModel(const std::string& name,
                                        const ForecasterDims& dims,
                                        const ModelOptions& options = {});

}  // namespace lipformer

#endif  // LIPFORMER_MODELS_FACTORY_H_
