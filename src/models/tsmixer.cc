#include "models/tsmixer.h"

#include "core/instance_norm.h"

namespace lipformer {

TsMixer::TsMixer(const ForecasterDims& dims, const TsMixerConfig& config,
                 uint64_t seed)
    : dims_(dims), config_(config) {
  Rng rng(seed);
  for (int64_t i = 0; i < config.num_blocks; ++i) {
    Block block;
    block.time_mix = std::make_unique<Linear>(dims.input_len, dims.input_len,
                                              rng);
    block.time_norm = std::make_unique<LayerNorm>(dims.channels, rng);
    block.feat_up = std::make_unique<Linear>(dims.channels,
                                             config.hidden_dim, rng);
    block.feat_down = std::make_unique<Linear>(config.hidden_dim,
                                               dims.channels, rng);
    block.feat_norm = std::make_unique<LayerNorm>(dims.channels, rng);
    if (config.dropout > 0.0f) {
      block.dropout = std::make_unique<Dropout>(config.dropout, rng);
    }
    const std::string prefix = "block" + std::to_string(i);
    RegisterModule(prefix + ".time_mix", block.time_mix.get());
    RegisterModule(prefix + ".time_norm", block.time_norm.get());
    RegisterModule(prefix + ".feat_up", block.feat_up.get());
    RegisterModule(prefix + ".feat_down", block.feat_down.get());
    RegisterModule(prefix + ".feat_norm", block.feat_norm.get());
    if (block.dropout) {
      RegisterModule(prefix + ".dropout", block.dropout.get());
    }
    blocks_.push_back(std::move(block));
  }
  head_ = std::make_unique<Linear>(dims.input_len, dims.pred_len, rng);
  RegisterModule("head", head_.get());
}

Variable TsMixer::Forward(const Batch& batch) {
  LIPF_CHECK_EQ(batch.x.size(1), dims_.input_len);
  LIPF_CHECK_EQ(batch.x.size(2), dims_.channels);

  Variable x(batch.x);
  auto [h, norm_state] = InstanceNormalize(x);  // [b, T, c]

  for (const Block& block : blocks_) {
    // Time mixing: operate on [b, c, T].
    Variable by_channel = Permute(h, {0, 2, 1});
    Variable mixed_time =
        block.time_mix->Forward(by_channel, Activation::kRelu);
    Variable time_out = Permute(mixed_time, {0, 2, 1});
    if (block.dropout) time_out = block.dropout->Forward(time_out);
    h = block.time_norm->Forward(Add(h, time_out));

    // Feature mixing: per time step across channels.
    Variable feat =
        block.feat_down->Forward(block.feat_up->Forward(h, Activation::kRelu));
    if (block.dropout) feat = block.dropout->Forward(feat);
    h = block.feat_norm->Forward(Add(h, feat));
  }

  // Temporal projection to the horizon, per channel.
  Variable by_channel = Permute(h, {0, 2, 1});       // [b, c, T]
  Variable y = head_->Forward(by_channel);           // [b, c, L]
  Variable out = Permute(y, {0, 2, 1});
  return InstanceDenormalize(out, norm_state);
}

}  // namespace lipformer
