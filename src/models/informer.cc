#include "models/informer.h"

#include <algorithm>
#include <cmath>

#include "core/instance_norm.h"
#include "nn/attention.h"
#include "tensor/ops.h"

namespace lipformer {

ProbSparseSelfAttention::ProbSparseSelfAttention(int64_t model_dim, Rng& rng,
                                                 float factor)
    : model_dim_(model_dim), factor_(factor) {
  wq_ = std::make_unique<Linear>(model_dim, model_dim, rng);
  wk_ = std::make_unique<Linear>(model_dim, model_dim, rng);
  wv_ = std::make_unique<Linear>(model_dim, model_dim, rng);
  wo_ = std::make_unique<Linear>(model_dim, model_dim, rng);
  RegisterModule("wq", wq_.get());
  RegisterModule("wk", wk_.get());
  RegisterModule("wv", wv_.get());
  RegisterModule("wo", wo_.get());
}

Variable ProbSparseSelfAttention::Forward(const Variable& x) const {
  LIPF_CHECK_EQ(x.dim(), 3);
  const int64_t b = x.size(0);
  const int64_t s = x.size(1);
  Variable q = wq_->Forward(x);
  Variable k = wk_->Forward(x);
  Variable v = wv_->Forward(x);

  const float scale = 1.0f / std::sqrt(static_cast<float>(model_dim_));
  Variable scores = MulScalar(MatMulTransB(q, k), scale);

  // Sparsity measure from the *values* of the scores (selection is a
  // discrete decision; gradients flow through the attention itself).
  const Tensor& sc = scores.value();  // [b, s, s]
  const int64_t u = std::min<int64_t>(
      s, std::max<int64_t>(
             1, static_cast<int64_t>(factor_ * std::log(
                                                   static_cast<float>(s)))));
  Tensor mask(Shape{b, s, 1});
  const float* ps = sc.data();
  float* pm = mask.data();
  std::vector<std::pair<float, int64_t>> measure(static_cast<size_t>(s));
  for (int64_t bi = 0; bi < b; ++bi) {
    for (int64_t i = 0; i < s; ++i) {
      const float* row = ps + (bi * s + i) * s;
      float mx = row[0];
      float mean = 0.0f;
      for (int64_t j = 0; j < s; ++j) {
        mx = std::max(mx, row[j]);
        mean += row[j];
      }
      mean /= static_cast<float>(s);
      measure[static_cast<size_t>(i)] = {mx - mean, i};
    }
    std::partial_sort(measure.begin(), measure.begin() + u, measure.end(),
                      [](const auto& a, const auto& c) {
                        return a.first > c.first;
                      });
    for (int64_t i = 0; i < u; ++i) {
      pm[(bi * s + measure[static_cast<size_t>(i)].second)] = 1.0f;
    }
  }

  Variable full = MatMul(Softmax(scores, 2), v);     // [b, s, d]
  Variable lazy = Mean(v, 1, /*keepdim=*/true);      // [b, 1, d]
  Tensor inv_mask = AddScalar(Neg(mask), 1.0f);
  Variable mixed = Add(MulConst(full, mask), MulConst(lazy, inv_mask));
  return wo_->Forward(mixed);
}

Informer::Informer(const ForecasterDims& dims, const InformerConfig& config,
                   uint64_t seed)
    : dims_(dims), config_(config) {
  Rng rng(seed);
  input_embed_ = std::make_unique<Linear>(dims.channels, config.model_dim,
                                          rng);
  RegisterModule("input_embed", input_embed_.get());
  pos_encoding_ = std::make_unique<PositionalEncoding>(dims.input_len,
                                                       config.model_dim);
  for (int64_t i = 0; i < config.num_layers; ++i) {
    Layer layer;
    layer.attention = std::make_unique<ProbSparseSelfAttention>(
        config.model_dim, rng, config.prob_sparse_factor);
    layer.norm1 = std::make_unique<LayerNorm>(config.model_dim, rng);
    layer.ffn_up = std::make_unique<Linear>(config.model_dim, config.ffn_dim,
                                            rng);
    layer.ffn_down = std::make_unique<Linear>(config.ffn_dim,
                                              config.model_dim, rng);
    layer.norm2 = std::make_unique<LayerNorm>(config.model_dim, rng);
    if (config.dropout > 0.0f) {
      layer.dropout = std::make_unique<Dropout>(config.dropout, rng);
    }
    const std::string prefix = "layer" + std::to_string(i);
    RegisterModule(prefix + ".attention", layer.attention.get());
    RegisterModule(prefix + ".norm1", layer.norm1.get());
    RegisterModule(prefix + ".ffn_up", layer.ffn_up.get());
    RegisterModule(prefix + ".ffn_down", layer.ffn_down.get());
    RegisterModule(prefix + ".norm2", layer.norm2.get());
    if (layer.dropout) RegisterModule(prefix + ".dropout",
                                      layer.dropout.get());
    layers_.push_back(std::move(layer));
  }
  head_ = std::make_unique<Linear>(config.model_dim,
                                   dims.pred_len * dims.channels, rng);
  RegisterModule("head", head_.get());
}

Variable Informer::Forward(const Batch& batch) {
  const int64_t b = batch.x.size(0);
  LIPF_CHECK_EQ(batch.x.size(1), dims_.input_len);
  LIPF_CHECK_EQ(batch.x.size(2), dims_.channels);

  Variable x(batch.x);
  auto [normalized, norm_state] = InstanceNormalize(x);

  Variable tokens = input_embed_->Forward(normalized);
  tokens = pos_encoding_->Forward(tokens);
  for (const Layer& layer : layers_) {
    Variable attended = layer.attention->Forward(tokens);
    if (layer.dropout) attended = layer.dropout->Forward(attended);
    Variable h = layer.norm1->Forward(Add(tokens, attended));
    Variable ffn =
        layer.ffn_down->Forward(layer.ffn_up->Forward(h, Activation::kGelu));
    if (layer.dropout) ffn = layer.dropout->Forward(ffn);
    tokens = layer.norm2->Forward(Add(h, ffn));
  }

  Variable pooled = Mean(tokens, 1);
  Variable y = head_->Forward(pooled);
  Variable out = Reshape(y, Shape{b, dims_.pred_len, dims_.channels});
  return InstanceDenormalize(out, norm_state);
}

}  // namespace lipformer
