#ifndef LIPFORMER_MODELS_DLINEAR_H_
#define LIPFORMER_MODELS_DLINEAR_H_

#include <memory>
#include <string>

#include "models/decomposition.h"
#include "models/forecaster.h"
#include "nn/linear.h"

namespace lipformer {

// DLinear (Zeng et al., AAAI 2023): decompose each channel into trend and
// seasonal components with a moving average, forecast each with a single
// shared linear map T -> L, and sum. The strongest simple baseline in the
// paper and the inspiration for LiPFormer's linear components.
class DLinear : public Forecaster {
 public:
  DLinear(const ForecasterDims& dims, uint64_t seed = 1,
          int64_t moving_avg_kernel = 25);

  Variable Forward(const Batch& batch) override;

  std::string name() const override { return "DLinear"; }
  int64_t input_len() const override { return dims_.input_len; }
  int64_t pred_len() const override { return dims_.pred_len; }
  int64_t channels() const override { return dims_.channels; }

 private:
  ForecasterDims dims_;
  Tensor avg_matrix_;
  std::unique_ptr<Linear> seasonal_proj_;
  std::unique_ptr<Linear> trend_proj_;
};

}  // namespace lipformer

#endif  // LIPFORMER_MODELS_DLINEAR_H_
