#ifndef LIPFORMER_MODELS_TIDE_H_
#define LIPFORMER_MODELS_TIDE_H_

#include <memory>
#include <string>
#include <vector>

#include "models/forecaster.h"
#include "nn/dropout.h"
#include "nn/layer_norm.h"
#include "nn/linear.h"

namespace lipformer {

// Residual MLP block used throughout TiDE:
//   out = LN(skip(x) + W2 relu(W1 x)).
class TideResBlock : public Module {
 public:
  TideResBlock(int64_t in_dim, int64_t hidden_dim, int64_t out_dim, Rng& rng,
               float dropout = 0.0f);

  Variable Forward(const Variable& x) const;

 private:
  std::unique_ptr<Linear> up_;
  std::unique_ptr<Linear> down_;
  std::unique_ptr<Linear> skip_;
  std::unique_ptr<LayerNorm> norm_;
  std::unique_ptr<Dropout> dropout_;
};

struct TideConfig {
  int64_t hidden_dim = 64;
  int64_t encoder_dim = 64;      // latent width
  int64_t decoder_out_dim = 8;   // per-step decoded width
  int64_t covariate_proj_dim = 4;  // per-step covariate projection
  float dropout = 0.1f;
};

// TiDE (Das et al., 2023): channel-independent dense encoder-decoder that
// *does* consume future covariates -- the only baseline in the paper with
// that ability, which is why it is LiPFormer's closest covariate-aware
// competitor. Past window + flattened projected future covariates are
// encoded by residual MLPs; a temporal decoder combines each decoded step
// with that step's projected covariates; a global linear skip connects
// past to horizon.
class Tide : public Forecaster {
 public:
  Tide(const ForecasterDims& dims, int64_t num_covariates,
       const TideConfig& config, uint64_t seed = 1);

  Variable Forward(const Batch& batch) override;

  std::string name() const override { return "TiDE"; }
  int64_t input_len() const override { return dims_.input_len; }
  int64_t pred_len() const override { return dims_.pred_len; }
  int64_t channels() const override { return dims_.channels; }

 private:
  ForecasterDims dims_;
  int64_t num_covariates_;
  TideConfig config_;
  std::unique_ptr<Linear> covariate_proj_;
  std::unique_ptr<TideResBlock> encoder1_;
  std::unique_ptr<TideResBlock> encoder2_;
  std::unique_ptr<TideResBlock> decoder_;
  std::unique_ptr<Linear> temporal_decoder_;
  std::unique_ptr<Linear> global_skip_;
};

}  // namespace lipformer

#endif  // LIPFORMER_MODELS_TIDE_H_
