#include "models/timemixer.h"

#include "core/instance_norm.h"

namespace lipformer {

TimeMixer::TimeMixer(const ForecasterDims& dims,
                     const TimeMixerConfig& config, uint64_t seed)
    : dims_(dims), config_(config) {
  Rng rng(seed);
  int64_t len = dims.input_len;
  for (int64_t s = 0; s < config.num_scales; ++s) {
    LIPF_CHECK_GT(len, 1) << "too many scales for input length";
    scale_lens_.push_back(len);
    const int64_t kernel =
        std::min<int64_t>(config.moving_avg_kernel, std::max<int64_t>(
                                                        3, len / 4));
    avg_matrices_.push_back(MovingAverageMatrix(len, kernel));
    predictors_.push_back(std::make_unique<Linear>(len, dims.pred_len, rng));
    RegisterModule("predictor" + std::to_string(s), predictors_.back().get());
    if (s + 1 < config.num_scales) {
      LIPF_CHECK_EQ(len % 2, 0) << "scale lengths must halve cleanly";
      season_mix_.push_back(std::make_unique<Linear>(len, len / 2, rng));
      trend_mix_.push_back(std::make_unique<Linear>(len / 2, len, rng));
      RegisterModule("season_mix" + std::to_string(s),
                     season_mix_.back().get());
      RegisterModule("trend_mix" + std::to_string(s),
                     trend_mix_.back().get());
    }
    len /= 2;
  }
}

Variable TimeMixer::Forward(const Batch& batch) {
  const int64_t b = batch.x.size(0);
  const int64_t t = batch.x.size(1);
  const int64_t c = batch.x.size(2);
  LIPF_CHECK_EQ(t, dims_.input_len);
  LIPF_CHECK_EQ(c, dims_.channels);

  Variable x(batch.x);
  auto [normalized, norm_state] = InstanceNormalize(x);
  Variable flat = Reshape(Permute(normalized, {0, 2, 1}), Shape{b * c, t});

  // Multi-resolution views via 2x average pooling.
  const int64_t scales = config_.num_scales;
  std::vector<Variable> seasons;
  std::vector<Variable> trends;
  Variable cur = flat;
  for (int64_t s = 0; s < scales; ++s) {
    auto [season, trend] = DecomposeSeries(cur, avg_matrices_[s]);
    seasons.push_back(season);
    trends.push_back(trend);
    if (s + 1 < scales) {
      const int64_t len = scale_lens_[s];
      Variable pooled =
          Mean(Reshape(cur, Shape{b * c, len / 2, 2}), 2);  // [B, len/2]
      cur = pooled;
    }
  }

  // Past-Decomposable-Mixing: seasonal bottom-up, trend top-down.
  for (int64_t s = 0; s + 1 < scales; ++s) {
    seasons[s + 1] =
        Add(seasons[s + 1], season_mix_[s]->Forward(seasons[s]));
  }
  for (int64_t s = scales - 2; s >= 0; --s) {
    trends[s] = Add(trends[s], trend_mix_[s]->Forward(trends[s + 1]));
  }

  // Future multipredictor: per-scale forecast, ensembled by averaging.
  Variable y;
  for (int64_t s = 0; s < scales; ++s) {
    Variable pred = predictors_[s]->Forward(Add(seasons[s], trends[s]));
    y = s == 0 ? pred : Add(y, pred);
  }
  y = MulScalar(y, 1.0f / static_cast<float>(scales));

  Variable out =
      Permute(Reshape(y, Shape{b, c, dims_.pred_len}), {0, 2, 1});
  return InstanceDenormalize(out, norm_state);
}

}  // namespace lipformer
