#ifndef LIPFORMER_MODELS_ITRANSFORMER_H_
#define LIPFORMER_MODELS_ITRANSFORMER_H_

#include <memory>
#include <string>
#include <vector>

#include "models/encoder_layer.h"
#include "models/forecaster.h"

namespace lipformer {

struct ITransformerConfig {
  int64_t model_dim = 64;
  int64_t num_heads = 4;
  int64_t num_layers = 2;
  int64_t ffn_dim = 128;
  float dropout = 0.1f;
};

// iTransformer (Liu et al., ICLR 2024): the attention is inverted --
// each *variate* becomes a token (its whole history embedded by a linear
// map T -> d), attention runs across channels, and a linear head maps each
// variate token to its horizon.
class ITransformer : public Forecaster {
 public:
  ITransformer(const ForecasterDims& dims, const ITransformerConfig& config,
               uint64_t seed = 1);

  Variable Forward(const Batch& batch) override;

  std::string name() const override { return "iTransformer"; }
  int64_t input_len() const override { return dims_.input_len; }
  int64_t pred_len() const override { return dims_.pred_len; }
  int64_t channels() const override { return dims_.channels; }

 private:
  ForecasterDims dims_;
  ITransformerConfig config_;
  std::unique_ptr<Linear> variate_embed_;  // T -> d
  std::vector<std::unique_ptr<TransformerEncoderLayer>> layers_;
  std::unique_ptr<Linear> head_;  // d -> L
};

}  // namespace lipformer

#endif  // LIPFORMER_MODELS_ITRANSFORMER_H_
