#include "models/transformer.h"

#include "core/instance_norm.h"

namespace lipformer {

VanillaTransformer::VanillaTransformer(const ForecasterDims& dims,
                                       const TransformerConfig& config,
                                       uint64_t seed)
    : dims_(dims), config_(config) {
  Rng rng(seed);
  input_embed_ = std::make_unique<Linear>(dims.channels, config.model_dim,
                                          rng);
  RegisterModule("input_embed", input_embed_.get());
  pos_encoding_ = std::make_unique<PositionalEncoding>(dims.input_len,
                                                       config.model_dim);
  for (int64_t i = 0; i < config.num_layers; ++i) {
    layers_.push_back(std::make_unique<TransformerEncoderLayer>(
        config.model_dim, config.num_heads, config.ffn_dim, rng,
        config.dropout));
    RegisterModule("layer" + std::to_string(i), layers_.back().get());
  }
  head_ = std::make_unique<Linear>(config.model_dim,
                                   dims.pred_len * dims.channels, rng);
  RegisterModule("head", head_.get());
}

Variable VanillaTransformer::Forward(const Batch& batch) {
  const int64_t b = batch.x.size(0);
  LIPF_CHECK_EQ(batch.x.size(1), dims_.input_len);
  LIPF_CHECK_EQ(batch.x.size(2), dims_.channels);

  Variable x(batch.x);
  auto [normalized, norm_state] = InstanceNormalize(x);

  Variable tokens = input_embed_->Forward(normalized);  // [b, T, d]
  tokens = pos_encoding_->Forward(tokens);
  for (const auto& layer : layers_) tokens = layer->Forward(tokens);

  Variable pooled = Mean(tokens, 1);  // [b, d]
  Variable y = head_->Forward(pooled);
  Variable out = Reshape(y, Shape{b, dims_.pred_len, dims_.channels});
  return InstanceDenormalize(out, norm_state);
}

}  // namespace lipformer
